// ADORE-style prefetch insertion: stride inference from DEAR records,
// register scavenging, nop-slot planting, and the end-to-end runtime on a
// conservatively compiled (noprefetch) memory-bound loop.
#include <gtest/gtest.h>

#include <memory>

#include <cmath>

#include "cobra/cobra.h"
#include "isa/assembler.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "rt/team.h"

namespace cobra::core {
namespace {

using isa::Addr;

// --- Stride inference -----------------------------------------------------------

TEST(StrideInference, ConfirmsSteadyStrides) {
  ThreadProfile profile;
  perfmon::Sample s;
  for (int i = 0; i < 6; ++i) {
    s.index = static_cast<std::uint64_t>(i);
    s.dear = cpu::Dear::Record{0x1000, 0x8000 + 64u * static_cast<Addr>(i),
                               150, true};
    profile.AddSample(s);
  }
  const DelinquentLoad& load = profile.loads().begin()->second;
  EXPECT_EQ(load.stride, 64);
  EXPECT_GE(load.stride_confirmations, 4u);
}

TEST(StrideInference, ResetsOnIrregularAddresses) {
  ThreadProfile profile;
  perfmon::Sample s;
  const Addr addrs[] = {0x8000, 0x8040, 0x9310, 0x8123, 0xa000};
  for (int i = 0; i < 5; ++i) {
    s.index = static_cast<std::uint64_t>(i);
    s.dear = cpu::Dear::Record{0x1000, addrs[i], 150, true};
    profile.AddSample(s);
  }
  const DelinquentLoad& load = profile.loads().begin()->second;
  EXPECT_LE(load.stride_confirmations, 1u);
}

// --- Scavenging and slot discovery ------------------------------------------------

TEST(Scavenging, FindsRegisterUnusedInRegion) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(isa::AddImm(8, 9, 1),
                                     isa::Ldf(32, 10), isa::Nop());
  const Addr b1 = image.AppendBundle(isa::Stf(11, 33), isa::Nop(),
                                     isa::BrCloop(-1));
  const auto scratch = FindFreeScratchGr(image, b0, b1);
  ASSERT_TRUE(scratch.has_value());
  // r8,9,10,11 are referenced; the scavenger must avoid them.
  EXPECT_GT(*scratch, 11);
  EXPECT_LE(*scratch, 31);
}

TEST(Scavenging, ReturnsNulloptWhenEverythingIsLive) {
  isa::BinaryImage image;
  // Genuinely consume every candidate register: each r8..r31 is stored to
  // memory, so its value is live from the region entry to its store.
  isa::Assembler a(&image);
  for (int reg = 8; reg <= 31; ++reg) {
    a.Emit(isa::St(8, reg, reg));
  }
  a.Emit(isa::Break());
  a.Finish();
  EXPECT_FALSE(
      FindFreeScratchGr(image, image.code_base(), image.code_end() - 16)
          .has_value());
}

TEST(Scavenging, LivenessAcceptsReferencedButDeadRegister) {
  isa::BinaryImage image;
  // r8..r30 are all live (stored); r31 only appears as the target of a
  // dead def — referenced, but its value is never consumed.
  isa::Assembler a(&image);
  for (int reg = 8; reg <= 30; ++reg) {
    a.Emit(isa::St(8, reg, reg));
  }
  a.Emit(isa::AddImm(31, 1, 7));  // dead def of r31
  a.Emit(isa::Break());
  a.Finish();
  const Addr begin = image.code_base();
  const Addr end = image.code_end() - 16;
  // The register-field scan cannot tell a dead def from a live value...
  EXPECT_FALSE(FindFreeScratchGrConservative(image, begin, end).has_value());
  // ...true liveness can.
  const auto scratch = FindFreeScratchGr(image, begin, end);
  ASSERT_TRUE(scratch.has_value());
  EXPECT_EQ(*scratch, 31);
}

TEST(NopSlots, FindsOnlyNops) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(isa::Nop(isa::Unit::kM),
                                     isa::AddImm(8, 8, 1), isa::Nop());
  const auto slots = FindNopSlots(image, b0, b0);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(isa::SlotOf(slots[0]), 0u);
  EXPECT_EQ(isa::SlotOf(slots[1]), 2u);
}

// --- End-to-end: memory-bound noprefetch DAXPY ------------------------------------

struct InsertionRun {
  Cycle cycles = 0;
  CobraRuntime::Stats stats;
  bool verified = false;
};

InsertionRun RunNoprefetchDaxpy(bool with_cobra,
                                const CobraConfig* override_config = nullptr) {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy::None());
  constexpr std::int64_t kN = 262144;  // 4 MB working set: memory-bound
  const Addr x = prog.Alloc(kN * 8);
  const Addr y = prog.Alloc(kN * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(1);
  cfg.mem.memory_bytes = 1 << 26;
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<Addr>(i), 2.0);
  }

  std::unique_ptr<CobraRuntime> cobra;
  if (with_cobra) {
    CobraConfig config;
    config.strategy = OptKind::kInsertPrefetch;
    if (override_config != nullptr) config = *override_config;
    cobra = std::make_unique<CobraRuntime>(&machine, config);
    cobra->AttachAll(1);
  }

  rt::Team team(&machine, 1);
  constexpr int kReps = 12;
  const Cycle start = machine.GlobalTime();
  for (int rep = 0; rep < kReps; ++rep) {
    team.Run(daxpy.entry, [&](int, cpu::RegisterFile& regs) {
      regs.WriteGr(14, x);
      regs.WriteGr(15, y);
      regs.WriteGr(16, static_cast<std::uint64_t>(kN));
      regs.WriteFr(6, 0.5);
    });
  }

  InsertionRun result;
  result.cycles = machine.GlobalTime() - start;
  if (cobra) result.stats = cobra->stats();
  result.verified = true;
  for (std::int64_t i = 0; i < kN; i += 4097) {  // spot-check
    double expected = 2.0;
    for (int rep = 0; rep < kReps; ++rep) {
      expected = std::fma(0.5, 1.0, expected);
    }
    if (machine.memory().ReadDouble(y + 8 * static_cast<Addr>(i)) !=
        expected) {
      result.verified = false;
    }
  }
  return result;
}

TEST(InsertionEndToEnd, RecoversPrefetchWinOnMemoryBoundLoop) {
  const InsertionRun baseline = RunNoprefetchDaxpy(false);
  const InsertionRun optimized = RunNoprefetchDaxpy(true);
  ASSERT_TRUE(baseline.verified);
  ASSERT_TRUE(optimized.verified);
  EXPECT_GT(optimized.stats.deployments, 0u);
  EXPECT_GT(optimized.stats.prefetches_inserted, 0u);
  // Runtime-inserted prefetches must recover a solid part of the miss
  // stalls of the unprefetched binary.
  EXPECT_LT(static_cast<double>(optimized.cycles),
            static_cast<double>(baseline.cycles) * 0.93);
}

TEST(InsertionEndToEnd, StaticPriorsCutTimeToFirstDeploy) {
  // Eager deployment with tiny wake windows makes stride *confirmation*
  // the qualification bottleneck: without priors a load needs
  // stride_confirmations repeats, with priors one on-lattice delta.
  CobraConfig config;
  config.strategy = OptKind::kInsertPrefetch;
  config.measured_epochs = false;
  config.batch_size = 1;  // wake every sample: finest deploy granularity
  config.batches_per_evaluation = 1;
  config.min_loop_hits = 1;  // hotness must not mask the confirmation wait
  // A period commensurate with the loop body parks every wake on the same
  // mid-bundle pc and the quiesce check starves; a coprime period rotates
  // the wake phase through the loop instead.
  config.sampling_period_insts = 1999;
  // Deep confirmation requirement: the dynamic-only run must watch the
  // stream repeat for several windows before it trusts the stride.
  config.stride_confirmations = 8;
  const InsertionRun profiled = RunNoprefetchDaxpy(true, &config);
  config.static_priors = true;
  const InsertionRun primed = RunNoprefetchDaxpy(true, &config);

  ASSERT_TRUE(profiled.verified);
  ASSERT_TRUE(primed.verified);
  EXPECT_GT(primed.stats.deployments, 0u);
  EXPECT_GT(primed.stats.scev_loops_solved, 0u);
  EXPECT_GT(primed.stats.prior_hits, 0u);
  // DAXPY's streams are clean affine chrecs: the profile never
  // contradicts the static solution, and nothing is invariant.
  EXPECT_EQ(primed.stats.prior_mismatches, 0u);
  EXPECT_EQ(primed.stats.invariant_suppressed, 0u);
  // The prior removes the wait for repeated confirmations: the first
  // trace must go live strictly earlier.
  ASSERT_GT(profiled.stats.first_deploy_cycles, 0u);
  ASSERT_GT(primed.stats.first_deploy_cycles, 0u);
  EXPECT_LT(primed.stats.first_deploy_cycles,
            profiled.stats.first_deploy_cycles);
}

TEST(InsertionEndToEnd, LeavesPrefetchedBinariesAlone) {
  // The insertion strategy must not touch loops that already prefetch.
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  const Addr x = prog.Alloc(8192 * 8);
  const Addr y = prog.Alloc(8192 * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(1);
  cfg.mem.memory_bytes = 1 << 24;
  machine::Machine machine(cfg, &prog.image());
  CobraConfig config;
  config.strategy = OptKind::kInsertPrefetch;
  CobraRuntime cobra(&machine, config);
  cobra.AttachAll(1);
  rt::Team team(&machine, 1);
  for (int rep = 0; rep < 30; ++rep) {
    team.Run(daxpy.entry, [&](int, cpu::RegisterFile& regs) {
      regs.WriteGr(14, x);
      regs.WriteGr(15, y);
      regs.WriteGr(16, 8192);
      regs.WriteFr(6, 0.5);
    });
  }
  EXPECT_EQ(cobra.stats().deployments, 0u);
  EXPECT_EQ(cobra.stats().prefetches_inserted, 0u);
}

}  // namespace
}  // namespace cobra::core
