// Cross-module integration and property tests:
//   * behavioural equivalence of COBRA-patched binaries across the whole
//     NPB mini-suite (the optimizer must never change program results);
//   * trace deployment over nested (CSR) loops;
//   * determinism of full COBRA runs;
//   * perfmon driver lifecycle edge cases;
//   * encode/decode fuzzing over the whole representable instruction space.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "cobra/cobra.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "npb/common.h"
#include "perfmon/sampling.h"
#include "support/rng.h"

namespace cobra {
namespace {

// --- COBRA never changes results ------------------------------------------------

class NpbUnderCobra : public ::testing::TestWithParam<const char*> {};

TEST_P(NpbUnderCobra, PatchedBinaryStillVerifies) {
  auto benchmark = npb::MakeBenchmark(GetParam());
  kgen::Program prog;
  benchmark->Build(prog, kgen::PrefetchPolicy{});
  machine::MachineConfig cfg = machine::SmpServerConfig(4);
  cfg.mem.memory_bytes = 1 << 25;
  machine::Machine machine(cfg, &prog.image());
  benchmark->Init(machine, 4);

  core::CobraConfig config;
  config.sampling_period_insts = 1000;
  config.strategy = core::OptKind::kNoprefetch;
  core::CobraRuntime cobra(&machine, config);
  cobra.AttachAll(4);

  rt::Team team(&machine, 4);
  benchmark->Run(team);
  EXPECT_TRUE(benchmark->Verify(machine)) << GetParam();

  // Every code patch the runtime made went through the patch-safety
  // verifier: Deploy/Revert/Reapply each end in a CheckDeployment pass, so
  // the pass count must cover at least one pass per deployment.
  const auto& stats = cobra.stats();
  EXPECT_GE(stats.patch_verifications, stats.deployments) << GetParam();
  if (stats.deployments > 0) {
    EXPECT_GT(stats.patch_verifications, 0u) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, NpbUnderCobra,
                         ::testing::Values("bt", "sp", "lu", "ft", "mg",
                                           "cg"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(NpbUnderCobraExcl, PatchedBinaryStillVerifies) {
  for (const char* name : {"mg", "cg"}) {
    auto benchmark = npb::MakeBenchmark(name);
    kgen::Program prog;
    benchmark->Build(prog, kgen::PrefetchPolicy{});
    machine::MachineConfig cfg = machine::SmpServerConfig(4);
    cfg.mem.memory_bytes = 1 << 25;
    machine::Machine machine(cfg, &prog.image());
    benchmark->Init(machine, 4);
    core::CobraConfig config;
    config.sampling_period_insts = 1000;
    config.strategy = core::OptKind::kPrefetchExcl;
    core::CobraRuntime cobra(&machine, config);
    cobra.AttachAll(4);
    rt::Team team(&machine, 4);
    benchmark->Run(team);
    EXPECT_TRUE(benchmark->Verify(machine)) << name;
    EXPECT_GE(cobra.stats().patch_verifications, cobra.stats().deployments)
        << name;
  }
}

// --- Nested-loop trace deployment -------------------------------------------------

TEST(NestedLoops, CsrInnerLoopTraceComputesSameValues) {
  kgen::Program prog;
  const kgen::LoopInfo spmv = EmitCsrMatvec(prog, "spmv", {});
  constexpr int kRows = 96;
  std::vector<std::int64_t> rowptr{0};
  std::vector<std::int64_t> col;
  std::vector<double> vals;
  for (int i = 0; i < kRows; ++i) {
    for (int j = i - 3; j <= i + 3; ++j) {
      if (j < 0 || j >= kRows) continue;
      col.push_back(j);
      vals.push_back(0.5 / (1 + std::abs(i - j)));
    }
    rowptr.push_back(static_cast<std::int64_t>(col.size()));
  }
  const mem::Addr rowptr_a = prog.Alloc(rowptr.size() * 8);
  const mem::Addr col_a = prog.Alloc(col.size() * 8);
  const mem::Addr vals_a = prog.Alloc(vals.size() * 8);
  const mem::Addr p_a = prog.Alloc(kRows * 8);
  const mem::Addr q_a = prog.Alloc(kRows * 8);

  machine::MachineConfig cfg = machine::SmpServerConfig(2);
  cfg.mem.memory_bytes = 1 << 22;
  machine::Machine machine(cfg, &prog.image());
  for (std::size_t i = 0; i < rowptr.size(); ++i) {
    machine.memory().WriteAs<std::int64_t>(rowptr_a + 8 * i, rowptr[i]);
  }
  for (std::size_t i = 0; i < col.size(); ++i) {
    machine.memory().WriteAs<std::int64_t>(col_a + 8 * i, col[i]);
    machine.memory().WriteDouble(vals_a + 8 * i, vals[i]);
  }
  for (int i = 0; i < kRows; ++i) {
    machine.memory().WriteDouble(p_a + 8 * static_cast<mem::Addr>(i),
                                 1.0 + 0.25 * i);
  }

  // Deploy a noprefetch trace over the *inner* product loop; the outer row
  // loop keeps running original code and must interoperate with the
  // redirected inner loop seamlessly.
  core::TraceCache cache(&prog.image());
  const int id =
      cache.Deploy(core::LoopRegion{spmv.head, spmv.back_branch_pc},
                   core::OptKind::kNoprefetch);
  ASSERT_GE(id, 0);

  rt::Team team(&machine, 2);
  team.Run(spmv.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 2, kRows);
    regs.WriteGr(14, rowptr_a);
    regs.WriteGr(15, col_a);
    regs.WriteGr(16, vals_a);
    regs.WriteGr(17, p_a);
    regs.WriteGr(18, q_a);
    regs.WriteGr(19, static_cast<std::uint64_t>(chunk.begin));
    regs.WriteGr(20, static_cast<std::uint64_t>(chunk.end));
  });

  for (int i = 0; i < kRows; ++i) {
    double acc = 0.0;
    for (std::int64_t k = rowptr[static_cast<std::size_t>(i)];
         k < rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
      acc = std::fma(
          vals[static_cast<std::size_t>(k)],
          1.0 + 0.25 * static_cast<double>(col[static_cast<std::size_t>(k)]),
          acc);
    }
    EXPECT_EQ(machine.memory().ReadDouble(q_a + 8 * static_cast<mem::Addr>(i)),
              acc)
        << i;
  }
}

// --- Determinism under COBRA -------------------------------------------------------

TEST(Determinism, FullCobraRunsAreBitIdentical) {
  auto RunOnce = [] {
    auto benchmark = npb::MakeBenchmark("mg");
    kgen::Program prog;
    benchmark->Build(prog, kgen::PrefetchPolicy{});
    machine::MachineConfig cfg = machine::SmpServerConfig(4);
    cfg.mem.memory_bytes = 1 << 25;
    machine::Machine machine(cfg, &prog.image());
    benchmark->Init(machine, 4);
    core::CobraConfig config;
    config.sampling_period_insts = 1000;
    core::CobraRuntime cobra(&machine, config);
    cobra.AttachAll(4);
    rt::Team team(&machine, 4);
    const Cycle cycles = benchmark->Run(team);
    return std::make_pair(cycles, cobra.stats().deployments);
  };
  const auto first = RunOnce();
  const auto second = RunOnce();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// --- perfmon lifecycle -----------------------------------------------------------

TEST(PerfmonLifecycle, StopFlushesPartialBatchAndRestartWorks) {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  const mem::Addr x = prog.Alloc(512 * 8);
  const mem::Addr y = prog.Alloc(512 * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(1);
  cfg.mem.memory_bytes = 1 << 22;
  machine::Machine machine(cfg, &prog.image());

  perfmon::SamplingConfig pcfg;
  pcfg.period_insts = 100;
  pcfg.batch_size = 64;  // larger than one run produces: forces a flush path
  perfmon::SamplingDriver driver(&machine, pcfg);
  std::size_t delivered = 0;
  driver.StartMonitoring(0, 0,
                         [&](int, std::span<const perfmon::Sample> batch) {
                           delivered += batch.size();
                         });

  rt::Team team(&machine, 1);
  auto Run = [&] {
    team.Run(daxpy.entry, [&](int, cpu::RegisterFile& regs) {
      regs.WriteGr(14, x);
      regs.WriteGr(15, y);
      regs.WriteGr(16, 512);
      regs.WriteFr(6, 1.0);
    });
  };
  Run();
  EXPECT_EQ(delivered, 0u);  // partial batch still buffered
  driver.StopMonitoring(0);
  EXPECT_GT(delivered, 0u);  // flushed on stop
  const std::size_t after_stop = delivered;
  Run();
  EXPECT_EQ(delivered, after_stop);  // no sampling while stopped

  // Restart resumes cleanly.
  driver.StartMonitoring(0, 0,
                         [&](int, std::span<const perfmon::Sample> batch) {
                           delivered += batch.size();
                         });
  Run();
  driver.StopAll();
  EXPECT_GT(delivered, after_stop);
}

// --- Encode/decode fuzz ------------------------------------------------------------

TEST(EncodingFuzz, RandomValidInstructionsRoundTrip) {
  support::Rng rng(0xDEC0DE);
  int tested = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    isa::Instruction inst;
    inst.op = static_cast<isa::Opcode>(
        rng.NextBounded(static_cast<std::uint64_t>(isa::Opcode::kOpcodeCount)));
    inst.unit = static_cast<isa::Unit>(rng.NextBounded(4));
    inst.qp = static_cast<std::uint8_t>(rng.NextBounded(64));
    inst.r1 = static_cast<std::uint8_t>(rng.NextBounded(128));
    inst.r2 = static_cast<std::uint8_t>(rng.NextBounded(128));
    inst.r3 = static_cast<std::uint8_t>(rng.NextBounded(128));
    inst.extra = static_cast<std::uint8_t>(rng.NextBounded(128));
    inst.p1 = static_cast<std::uint8_t>(rng.NextBounded(64));
    inst.p2 = static_cast<std::uint8_t>(rng.NextBounded(64));
    inst.size = static_cast<std::uint8_t>(1u << rng.NextBounded(4));
    inst.post_inc = rng.NextBounded(2) != 0;
    inst.rel = static_cast<isa::CmpRel>(rng.NextBounded(8));
    inst.frel = static_cast<isa::FCmpRel>(rng.NextBounded(6));
    inst.ld_hint = static_cast<isa::LoadHint>(rng.NextBounded(3));
    inst.lf_hint.temporal = static_cast<isa::Temporal>(rng.NextBounded(4));
    inst.lf_hint.excl = rng.NextBounded(2) != 0;
    inst.lf_hint.fault = rng.NextBounded(2) != 0;
    inst.imm = static_cast<std::int64_t>(rng.NextU64());

    // Normalize fields the encoding legitimately does not preserve for
    // this opcode (mirrors what Decode canonicalizes).
    switch (inst.op) {
      case isa::Opcode::kCmp:
      case isa::Opcode::kCmpImm:
        inst.extra = 0;                 // relation is packed there instead
        inst.frel = isa::FCmpRel::kEq;  // not representable for cmp
        break;
      case isa::Opcode::kFcmp:
        inst.extra = 0;
        inst.rel = isa::CmpRel::kEq;
        break;
      case isa::Opcode::kLd:
        inst.extra = 0;  // load hint is packed in the temporal bits
        inst.rel = isa::CmpRel::kEq;
        inst.frel = isa::FCmpRel::kEq;
        break;
      default:
        inst.rel = isa::CmpRel::kEq;
        inst.frel = isa::FCmpRel::kEq;
        break;
    }
    if (inst.op != isa::Opcode::kLd) inst.ld_hint = isa::LoadHint::kNone;
    if (inst.op != isa::Opcode::kLfetch) {
      // Non-lfetch ops keep the default temporal field.
      inst.lf_hint = isa::LfetchHint{};
      if (inst.op == isa::Opcode::kLd) {
        // kLd reuses the temporal bits for the load hint.
      }
    }
    // fcmp packs frel in extra and leaves lf hints defaulted (as helpers do).

    const isa::EncodedSlot slot = isa::Encode(inst);
    const isa::Instruction decoded = isa::Decode(slot);
    EXPECT_EQ(decoded, inst) << isa::Disassemble(inst) << " trial " << trial;
    ++tested;
  }
  EXPECT_EQ(tested, 20000);
}

// --- Disassembler totality over real binaries ---------------------------------------

TEST(DisasmTotality, EveryNpbSlotDisassembles) {
  for (const std::string& name : npb::SuiteNames()) {
    auto benchmark = npb::MakeBenchmark(name);
    kgen::Program prog;
    benchmark->Build(prog, kgen::PrefetchPolicy{});
    const auto& image = prog.image();
    for (isa::Addr bundle = image.code_base(); bundle < image.code_end();
         bundle += isa::kBundleBytes) {
      for (unsigned slot = 0; slot < 3; ++slot) {
        const std::string text =
            isa::Disassemble(image.Fetch(isa::MakePc(bundle, slot)));
        EXPECT_FALSE(text.empty());
      }
    }
  }
}

}  // namespace
}  // namespace cobra
