// Support-library tests: deterministic RNG, statistics accumulators,
// histogram filtering, and the table renderer.
#include <gtest/gtest.h>

#include <cmath>

#include "support/check.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace cobra::support {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  Rng c(43);
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(9);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    min = std::fmin(min, v);
    max = std::fmax(max, v);
  }
  EXPECT_LT(min, 0.05);  // reasonably uniform coverage
  EXPECT_GT(max, 0.95);
}

TEST(Rng, RangedDoubles) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RunningStat, MomentsMatchClosedForm) {
  RunningStat stat;
  for (int i = 1; i <= 100; ++i) stat.Add(i);
  EXPECT_EQ(stat.Count(), 100u);
  EXPECT_DOUBLE_EQ(stat.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(stat.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stat.Max(), 100.0);
  EXPECT_DOUBLE_EQ(stat.Sum(), 5050.0);
  // Sample variance of 1..100 = 101*100/12 / ... = 841.6666...
  EXPECT_NEAR(stat.Variance(), 841.6666666, 1e-6);
  stat.Reset();
  EXPECT_EQ(stat.Count(), 0u);
  EXPECT_EQ(stat.Mean(), 0.0);
}

TEST(Histogram, BucketsAndTails) {
  Histogram hist(0.0, 100.0, 10);
  hist.Add(-5.0);    // underflow
  hist.Add(0.0);     // bucket 0
  hist.Add(9.999);   // bucket 0
  hist.Add(95.0);    // bucket 9
  hist.Add(100.0);   // overflow (half-open)
  hist.Add(1e9);     // overflow
  EXPECT_EQ(hist.Total(), 6u);
  EXPECT_EQ(hist.Underflow(), 1u);
  EXPECT_EQ(hist.Overflow(), 2u);
  EXPECT_EQ(hist.BucketCount(0), 2u);
  EXPECT_EQ(hist.BucketCount(9), 1u);
  EXPECT_EQ(hist.BucketLo(0), 0.0);
  EXPECT_EQ(hist.BucketLo(9), 90.0);
}

TEST(Histogram, CountAtLeastMatchesLatencyFilterUse) {
  // The DEAR-filter style question: how many samples were >= 180 cycles?
  Histogram hist(0.0, 300.0, 30);  // 10-cycle buckets
  for (int i = 0; i < 10; ++i) hist.Add(130.0);  // memory loads
  for (int i = 0; i < 4; ++i) hist.Add(195.0);   // coherent misses
  hist.Add(400.0);                                // remote
  EXPECT_EQ(hist.CountAtLeast(180.0), 5u);
  EXPECT_EQ(hist.CountAtLeast(0.0), 15u);
  EXPECT_EQ(hist.CountAtLeast(300.0), 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  // Uniform fill: one sample per 1-wide bucket at its midpoint.
  Histogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) hist.Add(i + 0.5);
  // rank(p) = p * 99 + 1, linearly interpolated inside the bucket it
  // lands in, so quantiles track the uniform distribution closely.
  EXPECT_NEAR(hist.Quantile(0.5), 50.5, 0.5);
  EXPECT_NEAR(hist.Quantile(0.9), 90.1, 0.5);
  EXPECT_NEAR(hist.Quantile(0.99), 99.01, 0.5);
  // p is clamped; the extremes resolve inside the first/last hit bucket.
  EXPECT_EQ(hist.Quantile(-1.0), hist.Quantile(0.0));
  EXPECT_EQ(hist.Quantile(2.0), hist.Quantile(1.0));
  EXPECT_GE(hist.Quantile(0.0), 0.0);
  EXPECT_LE(hist.Quantile(1.0), 100.0);
  // Quantiles are monotone in p.
  for (double p = 0.0; p < 1.0; p += 0.1) {
    EXPECT_LE(hist.Quantile(p), hist.Quantile(p + 0.1));
  }
}

TEST(Histogram, QuantileTailsAndEmpty) {
  Histogram empty(0.0, 10.0, 5);
  EXPECT_EQ(empty.Quantile(0.5), 0.0);

  // All mass in the underflow bucket resolves to lo; overflow mass to hi
  // (the histogram keeps no exact values outside [lo, hi)).
  Histogram tails(10.0, 20.0, 5);
  for (int i = 0; i < 4; ++i) tails.Add(-100.0);
  EXPECT_EQ(tails.Quantile(0.5), 10.0);
  for (int i = 0; i < 20; ++i) tails.Add(500.0);
  EXPECT_EQ(tails.Quantile(0.9), 20.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", TextTable::Int(42)});
  table.AddRow({"longer-name", TextTable::Num(3.14159, 2)});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| 42 "), std::string::npos);
  EXPECT_NE(out.find("| 3.14 "), std::string::npos);
  EXPECT_NE(out.find("| longer-name "), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTable, FormattersProduceExpectedStrings) {
  EXPECT_EQ(TextTable::Int(-7), "-7");
  EXPECT_EQ(TextTable::Num(0.5, 1), "0.5");
  EXPECT_EQ(TextTable::Pct(0.175), "+17.5%");
  EXPECT_EQ(TextTable::Pct(-0.05, 0), "-5%");
}

TEST(Check, FailingCheckAborts) {
  EXPECT_DEATH(COBRA_CHECK_MSG(false, "boom"), "boom");
}

}  // namespace
}  // namespace cobra::support
