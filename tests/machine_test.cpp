// Machine/Team/perfmon integration tests: deterministic interleaving,
// fork/join semantics, static scheduling, and the sampling driver.
#include <gtest/gtest.h>

#include <memory>

#include "isa/assembler.h"
#include "machine/machine.h"
#include "perfmon/sampling.h"
#include "rt/team.h"

namespace cobra::machine {
namespace {

using namespace isa;

// Emits a kernel that stores `tid`-dependent values over its chunk:
//   args: r14 = base address, r15 = n (int64 slots), r16 = value.
Addr EmitFillKernel(BinaryImage& image) {
  Assembler a(&image);
  const Addr entry = image.code_end();
  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();
  a.Emit(CmpImm(CmpRel::kLe, 8, 0, 15, 0));
  a.EmitBranch(BrCond(8, 0), exit);
  a.Emit(MovReg(26, 14));
  a.Emit(AddImm(9, 15, -1));
  a.Emit(MovToAr(AppReg::kLC, 9));
  a.FlushBundle();
  a.Bind(loop);
  a.Emit(StPostInc(8, 26, 16, 8));
  a.EmitBranch(BrCloop(0), loop);
  a.Bind(exit);
  a.Emit(Break());
  a.Finish();
  return entry;
}

TEST(StaticChunk, CoversRangeWithoutOverlap) {
  for (int threads = 1; threads <= 8; ++threads) {
    for (std::int64_t n : {0, 1, 7, 64, 1001}) {
      std::int64_t covered = 0;
      std::int64_t prev_end = 0;
      for (int tid = 0; tid < threads; ++tid) {
        const auto chunk = rt::StaticChunk(tid, threads, n);
        EXPECT_EQ(chunk.begin, prev_end);
        EXPECT_GE(chunk.size(), 0);
        covered += chunk.size();
        prev_end = chunk.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

class TeamFixture : public ::testing::Test {
 protected:
  void Build(MachineConfig cfg) {
    cfg.mem.memory_bytes = 1 << 22;
    image_ = std::make_unique<BinaryImage>();
    entry_ = EmitFillKernel(*image_);
    machine_ = std::make_unique<Machine>(cfg, image_.get());
  }

  std::unique_ptr<BinaryImage> image_;
  Addr entry_ = 0;
  std::unique_ptr<Machine> machine_;
};

TEST_F(TeamFixture, ParallelFillCoversAllChunks) {
  Build(SmpServerConfig(4));
  rt::Team team(machine_.get(), 4);
  constexpr std::int64_t kN = 1000;
  const Addr base = 0x10000;
  const Cycle cycles = team.Run(entry_, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 4, kN);
    regs.WriteGr(14, base + 8 * static_cast<Addr>(chunk.begin));
    regs.WriteGr(15, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteGr(16, static_cast<std::uint64_t>(100 + tid));
  });
  EXPECT_GT(cycles, 0u);
  for (std::int64_t i = 0; i < kN; ++i) {
    int owner = -1;
    for (int tid = 0; tid < 4; ++tid) {
      const auto chunk = rt::StaticChunk(tid, 4, kN);
      if (i >= chunk.begin && i < chunk.end) owner = tid;
    }
    EXPECT_EQ(machine_->memory().Read(base + 8 * static_cast<Addr>(i), 8),
              static_cast<std::uint64_t>(100 + owner));
  }
}

TEST_F(TeamFixture, RunsAreDeterministic) {
  Build(SmpServerConfig(4));
  auto RunOnce = [&]() {
    machine_->ResetTiming();
    rt::Team team(machine_.get(), 4);
    return team.Run(entry_, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, 4, 4096);
      regs.WriteGr(14, 0x10000 + 8 * static_cast<Addr>(chunk.begin));
      regs.WriteGr(15, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteGr(16, static_cast<std::uint64_t>(tid));
    });
  };
  const Cycle first = RunOnce();
  const Cycle second = RunOnce();
  EXPECT_EQ(first, second);
}

TEST_F(TeamFixture, JoinBarrierSyncsCores) {
  Build(SmpServerConfig(4));
  rt::Team team(machine_.get(), 4);
  // Wildly unbalanced chunks.
  team.Run(entry_, [&](int tid, cpu::RegisterFile& regs) {
    regs.WriteGr(14, 0x10000 + 0x4000 * static_cast<Addr>(tid));
    regs.WriteGr(15, tid == 0 ? 2000u : 1u);
    regs.WriteGr(16, 7);
  });
  const Cycle t = machine_->GlobalTime();
  for (int cpu = 0; cpu < 4; ++cpu) {
    EXPECT_EQ(machine_->core(cpu).now(), t);
  }
}

TEST_F(TeamFixture, EmptyChunksAreSafe) {
  Build(SmpServerConfig(4));
  rt::Team team(machine_.get(), 4);
  team.Run(entry_, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 4, 2);  // threads 2,3 empty
    regs.WriteGr(14, 0x10000 + 8 * static_cast<Addr>(chunk.begin));
    regs.WriteGr(15, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteGr(16, 5);
  });
  EXPECT_EQ(machine_->memory().Read(0x10000, 8), 5u);
  EXPECT_EQ(machine_->memory().Read(0x10008, 8), 5u);
}

TEST_F(TeamFixture, NumaMachineRunsTheSameProgram) {
  Build(AltixConfig(8));
  rt::Team team(machine_.get(), 8);
  // Large enough that each thread's chunk spans whole 16K pages.
  constexpr std::int64_t kN = 8 * 4096;
  team.Run(entry_, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 8, kN);
    regs.WriteGr(14, 0x10000 + 8 * static_cast<Addr>(chunk.begin));
    regs.WriteGr(15, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteGr(16, static_cast<std::uint64_t>(tid));
  });
  // First-touch: each thread's pages homed at its node.
  EXPECT_EQ(machine_->memory().HomeNode(0x10000), 0);
  const auto last_chunk = rt::StaticChunk(7, 8, kN);
  EXPECT_EQ(machine_->memory().HomeNode(
                0x10000 + 8 * static_cast<Addr>(last_chunk.begin) + 16384),
            3);
}

TEST_F(TeamFixture, SamplingDriverDeliversTaggedBatches) {
  Build(SmpServerConfig(2));
  perfmon::SamplingConfig cfg;
  cfg.period_insts = 50;
  cfg.batch_size = 4;
  perfmon::SamplingDriver driver(machine_.get(), cfg);

  std::vector<perfmon::Sample> received;
  for (CpuId cpu = 0; cpu < 2; ++cpu) {
    driver.StartMonitoring(
        cpu, /*tid=*/cpu,
        [&received](int, std::span<const perfmon::Sample> batch) {
          received.insert(received.end(), batch.begin(), batch.end());
        });
  }

  rt::Team team(machine_.get(), 2);
  team.Run(entry_, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 2, 2048);
    regs.WriteGr(14, 0x10000 + 8 * static_cast<Addr>(chunk.begin));
    regs.WriteGr(15, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteGr(16, 1);
  });
  driver.StopAll();

  ASSERT_GT(received.size(), 8u);
  for (const auto& sample : received) {
    EXPECT_EQ(sample.tid, sample.cpu);  // bound threads
    EXPECT_TRUE(sample.cpu == 0 || sample.cpu == 1);
    EXPECT_GE(sample.pc, image_->code_base());
  }
  // Per-CPU indices are monotone from zero.
  std::uint64_t next_index[2] = {0, 0};
  for (const auto& sample : received) {
    EXPECT_EQ(sample.index, next_index[sample.cpu]++);
  }
  EXPECT_EQ(driver.TotalSamples(), received.size());
}

TEST_F(TeamFixture, SamplerSeesLoopBranchesInBtb) {
  Build(SmpServerConfig(1));
  perfmon::SamplingConfig cfg;
  cfg.period_insts = 16;
  cfg.batch_size = 2;
  perfmon::SamplingDriver driver(machine_.get(), cfg);
  bool saw_backward_branch = false;
  driver.StartMonitoring(
      0, 0, [&](int, std::span<const perfmon::Sample> batch) {
        for (const auto& sample : batch) {
          for (const auto& entry : sample.btb) {
            if (entry.source != 0 && entry.target <= entry.source) {
              saw_backward_branch = true;
            }
          }
        }
      });
  rt::Team team(machine_.get(), 1);
  team.Run(entry_, [&](int, cpu::RegisterFile& regs) {
    regs.WriteGr(14, 0x10000);
    regs.WriteGr(15, 512);
    regs.WriteGr(16, 1);
  });
  driver.StopAll();
  EXPECT_TRUE(saw_backward_branch);
}

}  // namespace
}  // namespace cobra::machine
