// Kernel-generator tests: every emitter is validated functionally against a
// host-side reference, and the generated code shape (Figure 2 properties:
// prologue burst, steady-state prefetch distance, rotating chains) is
// checked structurally.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "isa/disasm.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "rt/team.h"

namespace cobra::kgen {
namespace {

using isa::Addr;

class KgenFixture : public ::testing::Test {
 protected:
  void BuildMachine(int cpus = 4) {
    machine::MachineConfig cfg = machine::SmpServerConfig(cpus);
    cfg.mem.memory_bytes = 1 << 24;
    machine_ = std::make_unique<machine::Machine>(cfg, &prog_.image());
    team_ = std::make_unique<rt::Team>(machine_.get(), cpus);
  }

  void WriteArray(Addr base, const std::vector<double>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      machine_->memory().WriteDouble(base + 8 * i, v[i]);
    }
  }
  std::vector<double> ReadArray(Addr base, std::size_t n) {
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = machine_->memory().ReadDouble(base + 8 * i);
    }
    return out;
  }

  Program prog_;
  std::unique_ptr<machine::Machine> machine_;
  std::unique_ptr<rt::Team> team_;
};

// --- DAXPY (Figure 2) -------------------------------------------------------

TEST_F(KgenFixture, DaxpyMatchesReferenceAcrossThreadCounts) {
  const LoopInfo info = EmitDaxpy(prog_, "daxpy", PrefetchPolicy{});
  constexpr int kN = 503;  // odd size: uneven chunks
  const Addr x = prog_.Alloc(kN * 8);
  const Addr y = prog_.Alloc(kN * 8);
  BuildMachine(4);

  for (int threads = 1; threads <= 4; ++threads) {
    std::vector<double> xs(kN), ys(kN);
    for (int i = 0; i < kN; ++i) {
      xs[static_cast<std::size_t>(i)] = 0.5 * i;
      ys[static_cast<std::size_t>(i)] = 100.0 - i;
    }
    WriteArray(x, xs);
    WriteArray(y, ys);
    const double a = 2.25;

    // The team always has 4 members; members beyond `threads` get empty
    // chunks (the kernel's n<=0 guard exits immediately).
    team_->Run(info.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = tid < threads ? rt::StaticChunk(tid, threads, kN)
                                       : rt::IndexRange{};
      regs.WriteGr(14, x + 8 * static_cast<Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, a);
    });

    const auto result = ReadArray(y, kN);
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(result[static_cast<std::size_t>(i)],
                std::fma(a, xs[static_cast<std::size_t>(i)],
                         ys[static_cast<std::size_t>(i)]))
          << "i=" << i << " threads=" << threads;
    }
  }
}

TEST_F(KgenFixture, DaxpyCodeHasFigure2Shape) {
  const LoopInfo info = EmitDaxpy(prog_, "daxpy", PrefetchPolicy{});
  // One steady-state lfetch inside the loop.
  ASSERT_EQ(info.lfetch_pcs.size(), 1u);
  EXPECT_GE(info.lfetch_pcs[0], info.head);
  EXPECT_LT(info.lfetch_pcs[0], info.back_branch_pc);
  // The loop closes with br.ctop.
  EXPECT_EQ(prog_.image().Fetch(info.back_branch_pc).op,
            isa::Opcode::kBrCtop);
  // Prologue: six lfetches before the loop head (the Figure 2 burst).
  int prologue_lfetches = 0;
  for (Addr b = info.entry; b < info.head; b += isa::kBundleBytes) {
    for (unsigned s = 0; s < 3; ++s) {
      if (prog_.image().Fetch(isa::MakePc(b, s)).op == isa::Opcode::kLfetch) {
        ++prologue_lfetches;
      }
    }
  }
  EXPECT_EQ(prologue_lfetches, 6);
  // The disassembly of the kernel contains the signature instructions.
  const std::string text =
      isa::DisassembleRange(prog_.image(), info.head,
                            isa::BundleAddr(info.back_branch_pc) + 16);
  EXPECT_NE(text.find("(p16) ldfd f32=[r2],8"), std::string::npos) << text;
  EXPECT_NE(text.find("(p16) lfetch.nt1 [r43]"), std::string::npos) << text;
  EXPECT_NE(text.find("(p21) fma.d f44=f6,f37,f43"), std::string::npos);
  EXPECT_NE(text.find("(p23) stfd [r40]=f46"), std::string::npos);
  EXPECT_NE(text.find("(p16) add r41=16,r43"), std::string::npos);
  EXPECT_NE(text.find("br.ctop.sptk"), std::string::npos);
}

TEST_F(KgenFixture, DaxpyNoprefetchVariantHasNoLfetch) {
  const LoopInfo info = EmitDaxpy(prog_, "daxpy", PrefetchPolicy::None());
  EXPECT_TRUE(info.lfetch_pcs.empty());
  StaticStats stats = prog_.CountStatic();
  EXPECT_EQ(stats.lfetch, 0u);
  EXPECT_EQ(stats.br_ctop, 1u);
}

TEST_F(KgenFixture, DaxpyPrefetchOvershootsChunkBoundary) {
  const LoopInfo info = EmitDaxpy(prog_, "daxpy", PrefetchPolicy{});
  constexpr int kN = 4096;
  const Addr x = prog_.Alloc(kN * 8);
  const Addr y = prog_.Alloc(kN * 8);
  BuildMachine(2);
  // Thread 0 owns [0, kN/2): with a 1200-byte prefetch distance its lfetches
  // reach into thread 1's half, pulling lines thread 1 writes.
  team_->Run(info.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 2, kN);
    regs.WriteGr(14, x + 8 * static_cast<Addr>(chunk.begin));
    regs.WriteGr(15, y + 8 * static_cast<Addr>(chunk.begin));
    regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteFr(6, 1.0);
  });
  // Thread 0's stack holds x-lines at/after the boundary that it never
  // accesses demand-wise — prefetch overshoot. (Its overshot *y* lines are
  // invalidated again by thread 1's stores; x is read-only so the stale
  // prefetched copies survive to be observed.)
  const Addr boundary_line = (x + 8 * (kN / 2)) & ~Addr{127};
  bool overshoot = false;
  for (int l = 0; l < 9; ++l) {
    if (machine_->stack(0).LineState(boundary_line + 128u * l) !=
        mem::Mesi::kI) {
      overshoot = true;
    }
  }
  EXPECT_TRUE(overshoot);
  // And the overshoot caused real coherence traffic: thread 0's prefetches
  // of y lines thread 1 had already modified are HITM reads that downgrade
  // thread 1's dirty lines. (The full invalidation ping-pong of Figure 3
  // needs the repeated outer passes exercised by the Fig. 3 bench.)
  EXPECT_GT(machine_->stack(1).stats().snoop_downgrades, 0u);
  EXPECT_GT(machine_->fabric().TotalCounts().bus_rd_hitm, 0u);
}

// --- Stream loops ------------------------------------------------------------

struct StreamCase {
  StreamOp op;
  const char* name;
};

class StreamLoopTest : public KgenFixture,
                       public ::testing::WithParamInterface<StreamCase> {};

TEST_P(StreamLoopTest, MatchesReference) {
  const StreamCase param = GetParam();
  StreamLoopSpec spec;
  spec.op = param.op;
  const LoopInfo info = EmitStreamLoop(prog_, param.name, spec);

  constexpr int kN = 257;
  const int k = StreamOpInputs(param.op);
  std::vector<Addr> in(3);
  for (int s = 0; s < 3; ++s) in[static_cast<std::size_t>(s)] = prog_.Alloc(kN * 8);
  const Addr out = prog_.Alloc(kN * 8);
  BuildMachine(2);

  std::vector<std::vector<double>> data(3, std::vector<double>(kN));
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < kN; ++i) {
      data[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] =
          0.25 * i + s * 1000.0;
    }
    WriteArray(in[static_cast<std::size_t>(s)],
               data[static_cast<std::size_t>(s)]);
  }
  const double a = 1.5, b = -0.75;

  team_->Run(info.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 2, kN);
    for (int s = 0; s < k; ++s) {
      regs.WriteGr(ArgReg(s),
                   in[static_cast<std::size_t>(s)] +
                       8 * static_cast<Addr>(chunk.begin));
    }
    regs.WriteGr(17, out + 8 * static_cast<Addr>(chunk.begin));
    regs.WriteGr(18, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteFr(6, a);
    regs.WriteFr(7, b);
  });

  const auto result = ReadArray(out, kN);
  for (int i = 0; i < kN; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const double x = data[0][ui], y = data[1][ui], w = data[2][ui];
    double expected = 0.0;
    switch (param.op) {
      case StreamOp::kCopy: expected = x; break;
      case StreamOp::kScale: expected = std::fma(a, x, 0.0); break;
      case StreamOp::kDaxpy: expected = std::fma(a, x, y); break;
      case StreamOp::kAdd: expected = std::fma(x, 1.0, y); break;
      case StreamOp::kTriad: expected = std::fma(a, y, x); break;
      case StreamOp::kStencil3Sym:
        expected = std::fma(a, std::fma(x, 1.0, w), std::fma(b, y, 0.0));
        break;
      case StreamOp::kBlend4:
        expected = std::fma(std::fma(a, x, 0.0), y, std::fma(b, w, 0.0));
        break;
    }
    EXPECT_EQ(result[ui], expected) << param.name << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, StreamLoopTest,
    ::testing::Values(StreamCase{StreamOp::kCopy, "copy"},
                      StreamCase{StreamOp::kScale, "scale"},
                      StreamCase{StreamOp::kDaxpy, "daxpy2"},
                      StreamCase{StreamOp::kAdd, "add"},
                      StreamCase{StreamOp::kTriad, "triad"},
                      StreamCase{StreamOp::kStencil3Sym, "stencil"},
                      StreamCase{StreamOp::kBlend4, "blend"}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      return info.param.name;
    });

TEST_F(KgenFixture, StreamLoopAliasedOutputInPlaceUpdate) {
  StreamLoopSpec spec;
  spec.op = StreamOp::kDaxpy;
  spec.output_aliases_input = 1;  // out = y
  const LoopInfo info = EmitStreamLoop(prog_, "daxpy_inplace", spec);
  constexpr int kN = 64;
  const Addr x = prog_.Alloc(kN * 8);
  const Addr y = prog_.Alloc(kN * 8);
  BuildMachine(1);
  std::vector<double> xs(kN, 2.0), ys(kN, 10.0);
  WriteArray(x, xs);
  WriteArray(y, ys);
  team_->Run(info.entry, [&](int, cpu::RegisterFile& regs) {
    regs.WriteGr(14, x);
    regs.WriteGr(15, y);
    regs.WriteGr(17, y);
    regs.WriteGr(18, kN);
    regs.WriteFr(6, 3.0);
  });
  const auto result = ReadArray(y, kN);
  for (double v : result) EXPECT_EQ(v, 16.0);
}

// --- Reductions -----------------------------------------------------------------

TEST_F(KgenFixture, ReductionsMatchReference) {
  const LoopInfo dot = EmitReduction(prog_, "dot", ReduceOp::kDot, {});
  const LoopInfo sum = EmitReduction(prog_, "sum", ReduceOp::kSum, {});
  const LoopInfo sumsq =
      EmitReduction(prog_, "sumsq", ReduceOp::kSumSq, {});
  const LoopInfo max = EmitReduction(prog_, "max", ReduceOp::kMax, {});
  constexpr int kN = 301;
  const Addr x = prog_.Alloc(kN * 8);
  const Addr y = prog_.Alloc(kN * 8);
  const Addr partials = prog_.Alloc(4 * 8);
  BuildMachine(4);

  std::vector<double> xs(kN), ys(kN);
  for (int i = 0; i < kN; ++i) {
    xs[static_cast<std::size_t>(i)] = std::sin(0.1 * i);
    ys[static_cast<std::size_t>(i)] = std::cos(0.1 * i);
  }
  WriteArray(x, xs);
  WriteArray(y, ys);

  auto RunReduce = [&](const LoopInfo& info) {
    team_->Run(info.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, 4, kN);
      regs.WriteGr(14, x + 8 * static_cast<Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteGr(17, partials + 8 * static_cast<Addr>(tid));
    });
    return ReadArray(partials, 4);
  };

  // Dot: compare against per-chunk host accumulation (same fma order).
  auto parts = RunReduce(dot);
  for (int tid = 0; tid < 4; ++tid) {
    const auto chunk = rt::StaticChunk(tid, 4, kN);
    double acc = 0.0;
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      acc = std::fma(xs[static_cast<std::size_t>(i)],
                     ys[static_cast<std::size_t>(i)], acc);
    }
    EXPECT_EQ(parts[static_cast<std::size_t>(tid)], acc);
  }

  parts = RunReduce(sum);
  for (int tid = 0; tid < 4; ++tid) {
    const auto chunk = rt::StaticChunk(tid, 4, kN);
    double acc = 0.0;
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      acc = std::fma(xs[static_cast<std::size_t>(i)], 1.0, acc);
    }
    EXPECT_EQ(parts[static_cast<std::size_t>(tid)], acc);
  }

  parts = RunReduce(sumsq);
  for (int tid = 0; tid < 4; ++tid) {
    const auto chunk = rt::StaticChunk(tid, 4, kN);
    double acc = 0.0;
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      const double v = xs[static_cast<std::size_t>(i)];
      acc = std::fma(v, v, acc);
    }
    EXPECT_EQ(parts[static_cast<std::size_t>(tid)], acc);
  }

  parts = RunReduce(max);
  for (int tid = 0; tid < 4; ++tid) {
    const auto chunk = rt::StaticChunk(tid, 4, kN);
    double acc = -1e300;
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      acc = std::fmax(acc, xs[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(parts[static_cast<std::size_t>(tid)], acc);
  }
}

// --- CSR matvec --------------------------------------------------------------------

TEST_F(KgenFixture, CsrMatvecMatchesReference) {
  const LoopInfo info = EmitCsrMatvec(prog_, "spmv", {});
  constexpr int kRows = 61;
  // Build a small banded matrix in CSR.
  std::vector<std::int64_t> rowptr{0};
  std::vector<std::int64_t> col;
  std::vector<double> vals;
  for (int i = 0; i < kRows; ++i) {
    for (int j = i - 2; j <= i + 2; ++j) {
      if (j < 0 || j >= kRows) continue;
      col.push_back(j);
      vals.push_back(1.0 / (1 + std::abs(i - j)));
    }
    rowptr.push_back(static_cast<std::int64_t>(col.size()));
  }
  const Addr rowptr_a = prog_.Alloc(rowptr.size() * 8);
  const Addr col_a = prog_.Alloc(col.size() * 8);
  const Addr vals_a = prog_.Alloc(vals.size() * 8);
  const Addr p_a = prog_.Alloc(kRows * 8);
  const Addr q_a = prog_.Alloc(kRows * 8);
  BuildMachine(4);
  for (std::size_t i = 0; i < rowptr.size(); ++i) {
    machine_->memory().WriteAs<std::int64_t>(rowptr_a + 8 * i, rowptr[i]);
  }
  for (std::size_t i = 0; i < col.size(); ++i) {
    machine_->memory().WriteAs<std::int64_t>(col_a + 8 * i, col[i]);
    machine_->memory().WriteDouble(vals_a + 8 * i, vals[i]);
  }
  std::vector<double> p(kRows);
  for (int i = 0; i < kRows; ++i) p[static_cast<std::size_t>(i)] = 1.0 + 0.01 * i;
  WriteArray(p_a, p);

  team_->Run(info.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 4, kRows);
    regs.WriteGr(14, rowptr_a);
    regs.WriteGr(15, col_a);
    regs.WriteGr(16, vals_a);
    regs.WriteGr(17, p_a);
    regs.WriteGr(18, q_a);
    regs.WriteGr(19, static_cast<std::uint64_t>(chunk.begin));
    regs.WriteGr(20, static_cast<std::uint64_t>(chunk.end));
  });

  const auto q = ReadArray(q_a, kRows);
  for (int i = 0; i < kRows; ++i) {
    double acc = 0.0;
    for (std::int64_t k = rowptr[static_cast<std::size_t>(i)];
         k < rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
      acc = std::fma(
          vals[static_cast<std::size_t>(k)],
          p[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])], acc);
    }
    EXPECT_EQ(q[static_cast<std::size_t>(i)], acc) << i;
  }
}

// --- Integer kernels -----------------------------------------------------------------

TEST_F(KgenFixture, HistogramCountsKeys) {
  const LoopInfo info = EmitHistogram(prog_, "hist", {});
  constexpr int kN = 1000, kK = 32;
  const Addr keys = prog_.Alloc(kN * 4);
  const Addr hist = prog_.Alloc(kK * 4);
  BuildMachine(1);
  std::vector<int> expected(kK, 0);
  for (int i = 0; i < kN; ++i) {
    const int key = (i * 7919) % kK;
    machine_->memory().WriteAs<std::int32_t>(keys + 4 * static_cast<Addr>(i),
                                             key);
    ++expected[static_cast<std::size_t>(key)];
  }
  team_->Run(info.entry, [&](int, cpu::RegisterFile& regs) {
    regs.WriteGr(14, keys);
    regs.WriteGr(15, hist);
    regs.WriteGr(16, kN);
  });
  for (int k = 0; k < kK; ++k) {
    EXPECT_EQ(machine_->memory().ReadAs<std::int32_t>(
                  hist + 4 * static_cast<Addr>(k)),
              expected[static_cast<std::size_t>(k)]);
  }
}

TEST_F(KgenFixture, ScanAndPermuteSortKeys) {
  const LoopInfo hist_info = EmitHistogram(prog_, "hist", {});
  const LoopInfo scan_info = EmitScan(prog_, "scan", {});
  const LoopInfo perm_info = EmitPermute(prog_, "perm", {});
  constexpr int kN = 500, kK = 16;
  const Addr keys = prog_.Alloc(kN * 4);
  const Addr hist = prog_.Alloc(kK * 4);
  const Addr offsets = prog_.Alloc(kK * 4);
  const Addr total = prog_.Alloc(8);
  const Addr rank = prog_.Alloc(kN * 4);
  const Addr out = prog_.Alloc(kN * 4);
  BuildMachine(1);
  std::vector<std::int32_t> key_data(kN);
  for (int i = 0; i < kN; ++i) {
    key_data[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>((i * 2654435761u) % kK);
    machine_->memory().WriteAs<std::int32_t>(keys + 4 * static_cast<Addr>(i),
                                             key_data[static_cast<std::size_t>(i)]);
  }
  team_->Run(hist_info.entry, [&](int, cpu::RegisterFile& regs) {
    regs.WriteGr(14, keys);
    regs.WriteGr(15, hist);
    regs.WriteGr(16, kN);
  });
  team_->Run(scan_info.entry, [&](int, cpu::RegisterFile& regs) {
    regs.WriteGr(14, hist);
    regs.WriteGr(15, offsets);
    regs.WriteGr(16, kK);
    regs.WriteGr(17, total);
  });
  EXPECT_EQ(machine_->memory().ReadAs<std::int64_t>(total), kN);
  // Host computes ranks from the scanned offsets (stable counting sort).
  std::vector<std::int32_t> cursor(kK);
  for (int k = 0; k < kK; ++k) {
    cursor[static_cast<std::size_t>(k)] =
        machine_->memory().ReadAs<std::int32_t>(offsets +
                                                4 * static_cast<Addr>(k));
  }
  for (int i = 0; i < kN; ++i) {
    machine_->memory().WriteAs<std::int32_t>(
        rank + 4 * static_cast<Addr>(i),
        cursor[static_cast<std::size_t>(
            key_data[static_cast<std::size_t>(i)])]++);
  }
  team_->Run(perm_info.entry, [&](int, cpu::RegisterFile& regs) {
    regs.WriteGr(14, keys);
    regs.WriteGr(15, rank);
    regs.WriteGr(16, out);
    regs.WriteGr(17, kN);
  });
  std::int32_t prev = -1;
  for (int i = 0; i < kN; ++i) {
    const auto v = machine_->memory().ReadAs<std::int32_t>(
        out + 4 * static_cast<Addr>(i));
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST_F(KgenFixture, WhileCopyMatchesAndUsesWtop) {
  const LoopInfo info = EmitWhileCopy(prog_, "wcopy", {});
  EXPECT_EQ(prog_.image().Fetch(info.back_branch_pc).op,
            isa::Opcode::kBrWtop);
  constexpr int kN = 77;
  const Addr x = prog_.Alloc(kN * 8);
  const Addr out = prog_.Alloc(kN * 8);
  BuildMachine(1);
  std::vector<double> xs(kN);
  for (int i = 0; i < kN; ++i) xs[static_cast<std::size_t>(i)] = 7.0 - i;
  WriteArray(x, xs);
  team_->Run(info.entry, [&](int, cpu::RegisterFile& regs) {
    regs.WriteGr(14, x);
    regs.WriteGr(15, out);
    regs.WriteGr(16, kN);
  });
  EXPECT_EQ(ReadArray(out, kN), xs);
}

TEST_F(KgenFixture, EpKernelMatchesHostReplay) {
  const LoopInfo info = EmitEpKernel(prog_, "ep", {});
  constexpr std::uint64_t kSeed = 0x12345678u;
  constexpr int kTrials = 5000;
  const Addr acc_a = prog_.Alloc(8);
  const Addr rej_a = prog_.Alloc(8);
  const Addr sum_a = prog_.Alloc(8);
  BuildMachine(1);
  team_->Run(info.entry, [&](int, cpu::RegisterFile& regs) {
    regs.WriteGr(14, kSeed);
    regs.WriteGr(15, kTrials);
    regs.WriteGr(16, acc_a);
    regs.WriteGr(17, rej_a);
    regs.WriteGr(18, sum_a);
    regs.WriteFr(6, 2.0);
    regs.WriteFr(7, 3.0);
  });
  // Host replay with identical arithmetic.
  std::uint64_t s = kSeed;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  auto deviate = [&next] {
    const std::uint64_t bits =
        (next() & 0xfffffffffffffULL) | 0x3ff0000000000000ULL;
    double v;
    __builtin_memcpy(&v, &bits, 8);
    return std::fma(v, 2.0, -3.0);
  };
  std::int64_t accepted = 0, rejected = 0;
  double sum = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    const double x = deviate();
    const double y = deviate();
    double r2 = std::fma(x, x, 0.0);
    r2 = std::fma(y, y, r2);
    if (r2 <= 1.0) {
      ++accepted;
      sum = std::fma(std::sqrt(r2), 1.0, sum);
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(machine_->memory().ReadAs<std::int64_t>(acc_a), accepted);
  EXPECT_EQ(machine_->memory().ReadAs<std::int64_t>(rej_a), rejected);
  EXPECT_EQ(machine_->memory().ReadDouble(sum_a), sum);
  EXPECT_GT(accepted, kTrials / 2);  // pi/4 of trials accepted
}

// --- Static statistics (Table 1 machinery) ---------------------------------------

TEST_F(KgenFixture, CountStaticTallyByBranchKind) {
  EmitDaxpy(prog_, "daxpy", PrefetchPolicy{});          // 1 ctop, 7 lfetch
  EmitReduction(prog_, "dot", ReduceOp::kDot, PrefetchPolicy{});  // cloop, 2 lf
  EmitWhileCopy(prog_, "wcopy", PrefetchPolicy{});      // wtop, 1 lfetch
  const StaticStats stats = prog_.CountStatic();
  EXPECT_EQ(stats.br_ctop, 1u);
  EXPECT_EQ(stats.br_cloop, 1u);
  EXPECT_EQ(stats.br_wtop, 1u);
  EXPECT_EQ(stats.lfetch, 7u + 2u + 1u);
}

TEST_F(KgenFixture, CodeCacheExcludedFromStaticCounts) {
  EmitDaxpy(prog_, "daxpy", PrefetchPolicy{});
  const StaticStats before = prog_.CountStatic();
  prog_.image().BeginCodeCache();
  prog_.image().AppendBundle(isa::Lfetch(40), isa::Lfetch(41),
                             isa::Break());
  EXPECT_EQ(prog_.CountStatic().lfetch, before.lfetch);
}

TEST_F(KgenFixture, StaticExclPolicyHintsTheStoredStream) {
  const LoopInfo info = EmitDaxpy(prog_, "daxpy", PrefetchPolicy::Excl());
  // The .excl study variant splits the alternating chain: x stays a plain
  // prefetch, the stored stream (y) carries .excl.
  ASSERT_EQ(info.lfetch_pcs.size(), 2u);
  EXPECT_FALSE(prog_.image().Fetch(info.lfetch_pcs[0]).lf_hint.excl);  // x
  EXPECT_TRUE(prog_.image().Fetch(info.lfetch_pcs[1]).lf_hint.excl);   // y
  // Stream loops (whose hint COBRA flips at runtime) hint every lfetch.
  StreamLoopSpec spec;
  spec.op = StreamOp::kDaxpy;
  spec.prefetch = PrefetchPolicy::Excl();
  const LoopInfo stream = EmitStreamLoop(prog_, "sdaxpy", spec);
  for (const Addr pc : stream.lfetch_pcs) {
    EXPECT_TRUE(prog_.image().Fetch(pc).lf_hint.excl);
  }
}

TEST_F(KgenFixture, ExclDaxpyStillComputesCorrectly) {
  const LoopInfo info = EmitDaxpy(prog_, "daxpy", PrefetchPolicy::Excl());
  constexpr int kN = 333;
  const Addr x = prog_.Alloc(kN * 8);
  const Addr y = prog_.Alloc(kN * 8);
  BuildMachine(2);
  std::vector<double> xs(kN), ys(kN);
  for (int i = 0; i < kN; ++i) {
    xs[static_cast<std::size_t>(i)] = 1.0 + i;
    ys[static_cast<std::size_t>(i)] = 2.0 * i;
  }
  WriteArray(x, xs);
  WriteArray(y, ys);
  team_->Run(info.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 2, kN);
    regs.WriteGr(14, x + 8 * static_cast<Addr>(chunk.begin));
    regs.WriteGr(15, y + 8 * static_cast<Addr>(chunk.begin));
    regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteFr(6, -1.25);
  });
  const auto result = ReadArray(y, kN);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(result[static_cast<std::size_t>(i)],
              std::fma(-1.25, xs[static_cast<std::size_t>(i)],
                       ys[static_cast<std::size_t>(i)]));
  }
}

}  // namespace
}  // namespace cobra::kgen
