// Sampled-simulation pipeline tests: spec parsing, deterministic BBV
// phase clustering (including the steady-state medoid preference), and the
// two-pass PhaseProfiler -> SampledRun pipeline end to end — schedule
// shape, checkpoint accounting, the detailed-fraction wall proxy, and a
// sanity corridor on the projected cycle total against a full detailed
// run of the same workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "perfmon/bbv.h"
#include "perfmon/sample.h"
#include "rt/team.h"

namespace cobra {
namespace {

using perfmon::BasicBlockVector;
using perfmon::PhasePlan;
using perfmon::SampleConfig;

// --- Spec parsing --------------------------------------------------------

TEST(SampleSpec, ParsesIntervalOnly) {
  SampleConfig c;
  ASSERT_TRUE(perfmon::ParseSampleSpec("200000", &c));
  EXPECT_EQ(c.interval_insts, 200000u);
  EXPECT_EQ(c.max_phases, 8);
  EXPECT_EQ(c.warmup_insts, SampleConfig::kAutoWarmup);
  EXPECT_EQ(c.EffectiveWarmup(), 100000u);  // auto = interval / 2
  EXPECT_TRUE(c.enabled());
}

TEST(SampleSpec, ParsesPhasesAndWarmup) {
  SampleConfig c;
  ASSERT_TRUE(perfmon::ParseSampleSpec("200000:6", &c));
  EXPECT_EQ(c.interval_insts, 200000u);
  EXPECT_EQ(c.max_phases, 6);
  EXPECT_EQ(c.warmup_insts, SampleConfig::kAutoWarmup);

  ASSERT_TRUE(perfmon::ParseSampleSpec("200000:6:50000", &c));
  EXPECT_EQ(c.warmup_insts, 50000u);
  EXPECT_EQ(c.EffectiveWarmup(), 50000u);

  // Explicit zero disables warm-up (distinct from the auto sentinel).
  ASSERT_TRUE(perfmon::ParseSampleSpec("200000:6:0", &c));
  EXPECT_EQ(c.warmup_insts, 0u);
  EXPECT_EQ(c.EffectiveWarmup(), 0u);
}

TEST(SampleSpec, RejectsMalformedSpecs) {
  SampleConfig c;
  c.interval_insts = 777;  // must be left alone on failure
  EXPECT_FALSE(perfmon::ParseSampleSpec(nullptr, &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("abc", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("0", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("100x", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("100:", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("100:0", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("100:-2", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("100:4:", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("100:4:-5", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("100:4:xyz", &c));
  EXPECT_FALSE(perfmon::ParseSampleSpec("100:4:9junk", &c));
  EXPECT_EQ(c.interval_insts, 777u);
}

TEST(SampleSpec, EnvKnobRoundTrips) {
  ASSERT_EQ(setenv("COBRA_SAMPLE", "12345:3:99", 1), 0);
  SampleConfig c = perfmon::SampleConfigFromEnv();
  EXPECT_EQ(c.interval_insts, 12345u);
  EXPECT_EQ(c.max_phases, 3);
  EXPECT_EQ(c.warmup_insts, 99u);

  ASSERT_EQ(setenv("COBRA_SAMPLE", "garbage", 1), 0);
  c = perfmon::SampleConfigFromEnv();
  EXPECT_FALSE(c.enabled());

  ASSERT_EQ(unsetenv("COBRA_SAMPLE"), 0);
  c = perfmon::SampleConfigFromEnv();
  EXPECT_FALSE(c.enabled());
}

// --- Clustering ----------------------------------------------------------

BasicBlockVector MakeInterval(isa::Addr block, std::uint64_t weight) {
  BasicBlockVector v;
  v.weights[block] = weight;
  v.retired = weight;
  return v;
}

TEST(PhaseClustering, RepresentativeIsLatestEquallyCentralMember) {
  // Two alternating phases of identical vectors: every member of a cluster
  // sits at distance zero from its centroid, so the steady-state
  // preference must pick the LATEST occurrence (early occurrences carry
  // converging cache/optimizer state in a real run).
  std::vector<BasicBlockVector> intervals;
  intervals.push_back(MakeInterval(0x100, 10));  // phase A, interval 0
  intervals.push_back(MakeInterval(0x200, 10));  // phase B, interval 1
  intervals.push_back(MakeInterval(0x100, 10));  // A, 2
  intervals.push_back(MakeInterval(0x200, 10));  // B, 3
  intervals.push_back(MakeInterval(0x100, 10));  // A, 4

  const PhasePlan plan = perfmon::ClusterPhases(intervals, 2);
  ASSERT_EQ(plan.clusters.size(), 2u);
  ASSERT_EQ(plan.assignment.size(), 5u);
  EXPECT_EQ(plan.assignment[0], plan.assignment[2]);
  EXPECT_EQ(plan.assignment[0], plan.assignment[4]);
  EXPECT_EQ(plan.assignment[1], plan.assignment[3]);
  EXPECT_NE(plan.assignment[0], plan.assignment[1]);

  const auto& a = plan.clusters[static_cast<std::size_t>(plan.assignment[0])];
  const auto& b = plan.clusters[static_cast<std::size_t>(plan.assignment[1])];
  EXPECT_EQ(a.representative, 4);  // latest A, not the first
  EXPECT_EQ(b.representative, 3);  // latest B
  EXPECT_EQ(a.weight, 3u);
  EXPECT_EQ(b.weight, 2u);
}

TEST(PhaseClustering, DeterministicAcrossCalls) {
  std::vector<BasicBlockVector> intervals;
  for (int i = 0; i < 12; ++i) {
    BasicBlockVector v;
    // Three interleaved patterns with mild per-interval noise.
    v.weights[0x1000 + (i % 3) * 0x40] = 100;
    v.weights[0x2000] = 10 + static_cast<std::uint64_t>(i);
    v.retired = 110 + static_cast<std::uint64_t>(i);
    intervals.push_back(std::move(v));
  }
  const PhasePlan first = perfmon::ClusterPhases(intervals, 4);
  const PhasePlan second = perfmon::ClusterPhases(intervals, 4);
  EXPECT_EQ(first.assignment, second.assignment);
  ASSERT_EQ(first.clusters.size(), second.clusters.size());
  for (std::size_t c = 0; c < first.clusters.size(); ++c) {
    EXPECT_EQ(first.clusters[c].representative,
              second.clusters[c].representative);
    EXPECT_EQ(first.clusters[c].members, second.clusters[c].members);
  }
}

// --- Two-pass pipeline ---------------------------------------------------

// A workload with two distinct phases: a DAXPY-heavy stretch, then a
// dot-product stretch, then DAXPY again.
struct PipelineWorkload {
  kgen::LoopInfo daxpy;
  kgen::LoopInfo dot;
  mem::Addr x = 0;
  mem::Addr y = 0;
  mem::Addr partials = 0;
};

constexpr std::int64_t kN = 4096;
constexpr int kThreads = 4;

PipelineWorkload BuildPipeline(kgen::Program& prog) {
  PipelineWorkload w;
  w.daxpy = EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  w.dot = EmitReduction(prog, "dot", kgen::ReduceOp::kDot,
                        kgen::PrefetchPolicy{});
  w.x = prog.Alloc(kN * 8);
  w.y = prog.Alloc(kN * 8);
  w.partials = prog.Alloc(kThreads * 8);
  return w;
}

void RunPhasedWorkload(machine::Machine& machine, const PipelineWorkload& w) {
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(w.x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(w.y + 8 * static_cast<mem::Addr>(i), 2.0);
  }
  rt::Team team(&machine, kThreads);
  auto daxpy_setup = [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, kThreads, kN);
    regs.WriteGr(14, w.x + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(15, w.y + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteFr(6, 0.5);
  };
  auto dot_setup = [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, kThreads, kN);
    regs.WriteGr(14, w.x + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(15, w.y + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteGr(17, w.partials + 8 * static_cast<mem::Addr>(tid));
  };
  for (int rep = 0; rep < 4; ++rep) team.Run(w.daxpy.entry, daxpy_setup);
  for (int rep = 0; rep < 8; ++rep) team.Run(w.dot.entry, dot_setup);
  for (int rep = 0; rep < 4; ++rep) team.Run(w.daxpy.entry, daxpy_setup);
}

perfmon::PhaseProfile ProfilePipeline(const SampleConfig& config) {
  kgen::Program prog;
  const PipelineWorkload w = BuildPipeline(prog);
  machine::MachineConfig cfg = machine::SmpServerConfig(kThreads);
  cfg.mem.memory_bytes = 1 << 23;
  machine::Machine machine(cfg, &prog.image());
  perfmon::PhaseProfiler profiler(&machine, config);
  RunPhasedWorkload(machine, w);
  return profiler.Finish();
}

SampleConfig PipelineConfig() {
  SampleConfig config;
  config.interval_insts = 30000;
  config.max_phases = 4;
  return config;
}

TEST(SampledPipeline, ProfileScheduleIsWellFormed) {
  const perfmon::PhaseProfile profile = ProfilePipeline(PipelineConfig());
  ASSERT_GT(profile.intervals.size(), 2u);
  ASSERT_EQ(profile.boundaries.size(), profile.intervals.size());
  EXPECT_EQ(profile.warmup_insts, PipelineConfig().EffectiveWarmup());
  std::uint64_t cumulative = 0;
  int representatives = 0;
  for (std::size_t i = 0; i < profile.intervals.size(); ++i) {
    EXPECT_GT(profile.intervals[i].retired, 0u);
    cumulative += profile.intervals[i].retired;
    EXPECT_EQ(profile.boundaries[i], cumulative);
    if (profile.IsRepresentative(static_cast<int>(i))) ++representatives;
  }
  EXPECT_EQ(representatives, static_cast<int>(profile.plan.clusters.size()));
  EXPECT_GE(profile.plan.clusters.size(), 2u);  // daxpy + dot phases
  // Out-of-schedule indexes are never representative.
  EXPECT_FALSE(profile.IsRepresentative(-1));
  EXPECT_FALSE(
      profile.IsRepresentative(static_cast<int>(profile.intervals.size())));
}

TEST(SampledPipeline, ProfilingIsDeterministic) {
  const perfmon::PhaseProfile first = ProfilePipeline(PipelineConfig());
  const perfmon::PhaseProfile second = ProfilePipeline(PipelineConfig());
  EXPECT_EQ(first.boundaries, second.boundaries);
  EXPECT_EQ(first.plan.assignment, second.plan.assignment);
  ASSERT_EQ(first.plan.clusters.size(), second.plan.clusters.size());
  for (std::size_t c = 0; c < first.plan.clusters.size(); ++c) {
    EXPECT_EQ(first.plan.clusters[c].representative,
              second.plan.clusters[c].representative);
  }
}

TEST(SampledPipeline, SampledRunMeasuresAndProjects) {
  const perfmon::PhaseProfile profile = ProfilePipeline(PipelineConfig());
  const std::uint64_t profiled_retired = profile.boundaries.back();

  // Full detailed reference for the projection corridor.
  std::uint64_t full_cycles = 0;
  {
    kgen::Program prog;
    const PipelineWorkload w = BuildPipeline(prog);
    machine::MachineConfig cfg = machine::SmpServerConfig(kThreads);
    cfg.mem.memory_bytes = 1 << 23;
    machine::Machine machine(cfg, &prog.image());
    RunPhasedWorkload(machine, w);
    full_cycles = machine.GlobalTime();
  }

  kgen::Program prog;
  const PipelineWorkload w = BuildPipeline(prog);
  machine::MachineConfig cfg = machine::SmpServerConfig(kThreads);
  cfg.mem.memory_bytes = 1 << 23;
  machine::Machine machine(cfg, &prog.image());
  perfmon::SampledRun sampled(&machine, profile);
  RunPhasedWorkload(machine, w);
  const perfmon::SampleOutcome outcome = sampled.Finish();

  EXPECT_EQ(outcome.intervals, profile.intervals.size());
  EXPECT_EQ(outcome.phases, profile.plan.clusters.size());
  // Every representative was simulated in detail, each warmed up through
  // one checkpoint round-trip.
  EXPECT_EQ(outcome.detailed_intervals, outcome.phases);
  EXPECT_EQ(outcome.checkpoints, outcome.detailed_intervals);
  EXPECT_GT(outcome.checkpoint_bytes, 0u);
  // Pass 2 executes the same instruction stream pass 1 profiled.
  EXPECT_EQ(outcome.total_retired, profiled_retired);
  // The wall proxy: most of the run was fast-forwarded.
  EXPECT_GT(outcome.detailed_retired, 0u);
  EXPECT_LT(outcome.detailed_fraction, 1.0);
  EXPECT_GT(outcome.detailed_fraction, 0.0);
  // The machine leaves pass 2 in detailed mode.
  EXPECT_FALSE(machine.fast_forward());
  // Projection corridor: the extrapolated cycle total tracks the full
  // detailed run within a loose factor (this is a smoke bound, not an
  // accuracy claim — bench/suite.cpp's sampled_accuracy experiment
  // measures real error).
  ASSERT_GT(outcome.projected_cycles, 0u);
  EXPECT_GT(outcome.projected_cycles, full_cycles / 3);
  EXPECT_LT(outcome.projected_cycles, full_cycles * 3);
}

TEST(SampledPipeline, DisabledConfigIsRejected) {
  SampleConfig config;  // interval_insts == 0
  EXPECT_FALSE(config.enabled());
}

}  // namespace
}  // namespace cobra
