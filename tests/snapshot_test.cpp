// Checkpoint round-trip battery: a mid-run SaveCheckpoint must be
// invisible. The harness runs a sharing-heavy workload (chunked DAXPY plus
// a dot-product reduction whose per-thread partial slots share cache
// lines, so every protocol's dirty-sharing states are populated) and, at a
// quantum barrier mid-run, serializes the whole machine and restores it in
// place. The final fingerprint — every non-host registry metric, per-core
// timing/PC state and a hash of the data segment — must be bit-identical
// to a run that never paused, across both machine shapes, all four
// coherence protocols, and serial/parallel engines.
//
// The transplant tests restore a mid-run blob into a *freshly built*
// machine and finish the run there; the rejection tests feed corrupted,
// truncated, version-bumped and wrong-shape blobs to RestoreCheckpoint and
// assert it refuses without touching the target machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/engine.h"
#include "machine/machine.h"
#include "mem/protocol.h"
#include "obs/registry.h"
#include "rt/team.h"
#include "support/snapshot.h"

namespace cobra {
namespace {

std::uint64_t TotalRetired(machine::Machine& m) {
  std::uint64_t total = 0;
  for (CpuId cpu = 0; cpu < m.num_cpus(); ++cpu) {
    total += m.core(cpu).instructions_retired();
  }
  return total;
}

// Everything a run can observe: global time, per-core timing state, the
// registry (caches, fabric, engine counters; host metrics excluded), and
// the architectural contents of [data_begin, data_end).
std::string Fingerprint(machine::Machine& m, mem::Addr data_begin,
                        mem::Addr data_end) {
  std::ostringstream out;
  out << "global_time=" << m.GlobalTime() << "\n";
  for (CpuId cpu = 0; cpu < m.num_cpus(); ++cpu) {
    const cpu::Core& core = m.core(cpu);
    out << "cpu" << cpu << " now=" << core.now() << " pc=" << core.pc()
        << " retired=" << core.instructions_retired() << "\n";
  }
  const obs::Snapshot snapshot = m.registry().Take();
  out << "registry_fp=" << snapshot.Fingerprint() << "\n"
      << snapshot.ToString();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (mem::Addr a = data_begin; a < data_end; ++a) {
    h ^= m.memory().Read(a, 1);
    h *= 1099511628211ull;
  }
  out << "memhash=" << h << "\n";
  return out.str();
}

// The workload's program: DAXPY and a dot reduction over the same arrays.
struct Workload {
  kgen::LoopInfo daxpy;
  kgen::LoopInfo dot;
  mem::Addr x = 0;
  mem::Addr y = 0;
  mem::Addr partials = 0;  // one 8-byte slot per thread, deliberately
                           // adjacent: false sharing on every protocol
  mem::Addr data_end = 0;
};

constexpr std::int64_t kN = 8192;

Workload BuildWorkload(kgen::Program& prog, int threads) {
  Workload w;
  w.daxpy = EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  w.dot = EmitReduction(prog, "dot", kgen::ReduceOp::kDot,
                        kgen::PrefetchPolicy{});
  w.x = prog.Alloc(kN * 8);
  w.y = prog.Alloc(kN * 8);
  w.partials = prog.Alloc(static_cast<mem::Addr>(threads) * 8);
  w.data_end = w.partials + static_cast<mem::Addr>(threads) * 8;
  return w;
}

void InitData(machine::Machine& machine, const Workload& w) {
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(w.x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(w.y + 8 * static_cast<mem::Addr>(i), 2.0);
  }
}

void RunRep(rt::Team& team, const Workload& w, int threads) {
  team.Run(w.daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, threads, kN);
    regs.WriteGr(14, w.x + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(15, w.y + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteFr(6, 0.5);
  });
  team.Run(w.dot.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, threads, kN);
    regs.WriteGr(14, w.x + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(15, w.y + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteGr(17, w.partials + 8 * static_cast<mem::Addr>(tid));
  });
}

constexpr int kReps = 4;
// Machine-wide retired-instruction threshold for the mid-run checkpoint;
// one DAXPY rep alone retires several times this, so every configuration
// checkpoints inside the first rep, mid-region.
constexpr std::uint64_t kCheckpointAt = 20000;

struct RunResult {
  std::string fingerprint;
  bool checkpoint_taken = false;
  std::vector<std::uint8_t> blob;  // the mid-run snapshot (empty if straight)
};

enum class Mode {
  kStraight,   // never pause
  kRoundTrip,  // save + restore in place at the barrier, then keep running
  kSaveOnly,   // save the blob at the barrier, keep running undisturbed
};

RunResult RunWorkload(machine::MachineConfig cfg, int threads,
                      const machine::EngineConfig& engine, Mode mode) {
  kgen::Program prog;
  const Workload w = BuildWorkload(prog, threads);
  cfg.mem.memory_bytes = 1 << 23;
  machine::Machine machine(cfg, &prog.image());
  InitData(machine, w);

  RunResult result;
  int task = -1;
  if (mode != Mode::kStraight) {
    task = machine.AddRoundTask([&] {
      if (result.checkpoint_taken || TotalRetired(machine) < kCheckpointAt) {
        return;
      }
      result.checkpoint_taken = true;
      result.blob = machine.SaveCheckpoint();
      if (mode == Mode::kRoundTrip) {
        std::string error;
        EXPECT_TRUE(machine.RestoreCheckpoint(result.blob, &error)) << error;
      }
    });
  }

  rt::Team team(&machine, threads, engine);
  for (int rep = 0; rep < kReps; ++rep) RunRep(team, w, threads);
  if (task >= 0) machine.RemoveRoundTask(task);
  result.fingerprint = Fingerprint(machine, w.x, w.data_end);
  return result;
}

constexpr mem::Protocol kAllProtocols[] = {
    mem::Protocol::kMesi, mem::Protocol::kMoesi, mem::Protocol::kDragon,
    mem::Protocol::kMesif};

// Mid-run save -> restore-in-place -> run-to-completion must equal a run
// that never paused, for every shape x protocol x engine combination.
void RunRoundTripMatrix(const machine::MachineConfig& base, int threads) {
  for (const mem::Protocol protocol : kAllProtocols) {
    machine::MachineConfig cfg = base;
    cfg.mem.protocol = protocol;
    for (const char* spec : {"serial", "parallel:2"}) {
      const machine::EngineConfig engine = machine::ParseEngineSpec(spec);
      const RunResult straight = RunWorkload(cfg, threads, engine,
                                             Mode::kStraight);
      const RunResult paused = RunWorkload(cfg, threads, engine,
                                           Mode::kRoundTrip);
      ASSERT_TRUE(paused.checkpoint_taken)
          << mem::ProtocolName(protocol) << "/" << spec
          << ": checkpoint threshold never reached";
      EXPECT_FALSE(paused.blob.empty());
      EXPECT_EQ(straight.fingerprint, paused.fingerprint)
          << "round-trip diverged under " << mem::ProtocolName(protocol)
          << "/" << spec;
    }
  }
}

TEST(SnapshotRoundTrip, SmpAllProtocolsBothEngines) {
  RunRoundTripMatrix(machine::SmpServerConfig(4), 4);
}

TEST(SnapshotRoundTrip, NumaAllProtocolsBothEngines) {
  RunRoundTripMatrix(machine::AltixConfig(8), 8);
}

// A blob saved between parallel regions restores into a freshly built
// machine (same configuration, independently re-generated program) and the
// run finishes there — final state identical to the uninterrupted run.
TEST(SnapshotTransplant, ResumesInFreshMachine) {
  const machine::MachineConfig base = machine::SmpServerConfig(4);
  const int threads = 4;

  // Reference: all reps on one machine.
  const RunResult straight =
      RunWorkload(base, threads, machine::EngineConfig{}, Mode::kStraight);

  // First half on the donor machine.
  kgen::Program donor_prog;
  const Workload donor_w = BuildWorkload(donor_prog, threads);
  machine::MachineConfig cfg = base;
  cfg.mem.memory_bytes = 1 << 23;
  machine::Machine donor(cfg, &donor_prog.image());
  InitData(donor, donor_w);
  rt::Team donor_team(&donor, threads);
  for (int rep = 0; rep < kReps / 2; ++rep) RunRep(donor_team, donor_w, threads);
  const std::vector<std::uint8_t> blob = donor.SaveCheckpoint();

  // Second half on a fresh machine: kgen emission is deterministic, so the
  // regenerated program has the same layout the blob's image section
  // expects.
  kgen::Program fresh_prog;
  const Workload fresh_w = BuildWorkload(fresh_prog, threads);
  machine::Machine fresh(cfg, &fresh_prog.image());
  std::string error;
  ASSERT_TRUE(fresh.RestoreCheckpoint(blob, &error)) << error;
  rt::Team fresh_team(&fresh, threads);
  for (int rep = kReps / 2; rep < kReps; ++rep) RunRep(fresh_team, fresh_w, threads);

  EXPECT_EQ(straight.fingerprint,
            Fingerprint(fresh, fresh_w.x, fresh_w.data_end));
}

// A blob saved *mid-region* (at a quantum barrier inside a parallel
// region) transplants too: the fresh machine's cores resume from their
// checkpointed PCs under RunUntilAllHalted, then the remaining reps run
// normally. Matches the straight serial run exactly.
TEST(SnapshotTransplant, ResumesMidRegionInFreshMachine) {
  const machine::MachineConfig base = machine::SmpServerConfig(4);
  const int threads = 4;

  const RunResult straight =
      RunWorkload(base, threads, machine::EngineConfig{}, Mode::kStraight);
  const RunResult saved =
      RunWorkload(base, threads, machine::EngineConfig{}, Mode::kSaveOnly);
  ASSERT_TRUE(saved.checkpoint_taken);

  kgen::Program prog;
  const Workload w = BuildWorkload(prog, threads);
  machine::MachineConfig cfg = base;
  cfg.mem.memory_bytes = 1 << 23;
  machine::Machine fresh(cfg, &prog.image());
  std::string error;
  ASSERT_TRUE(fresh.RestoreCheckpoint(saved.blob, &error)) << error;

  // Finish the interrupted region (cores hold their mid-loop PCs), then
  // run the remaining reps. The checkpoint lands inside rep 0's DAXPY
  // region (see kCheckpointAt), so the dot of rep 0 plus reps 1..3 remain.
  std::vector<CpuId> active;
  for (CpuId cpu = 0; cpu < threads; ++cpu) active.push_back(cpu);
  fresh.RunUntilAllHalted(active);
  rt::Team team(&fresh, threads);
  team.Run(w.dot.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, threads, kN);
    regs.WriteGr(14, w.x + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(15, w.y + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteGr(17, w.partials + 8 * static_cast<mem::Addr>(tid));
  });
  for (int rep = 1; rep < kReps; ++rep) RunRep(team, w, threads);

  EXPECT_EQ(straight.fingerprint, Fingerprint(fresh, w.x, w.data_end));
}

// --- Rejection: damaged or mismatched blobs must not touch the machine ---

class SnapshotRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    const RunResult saved = RunWorkload(machine::SmpServerConfig(4), 4,
                                        machine::EngineConfig{},
                                        Mode::kSaveOnly);
    ASSERT_TRUE(saved.checkpoint_taken);
    blob_ = saved.blob;

    prog_ = std::make_unique<kgen::Program>();
    workload_ = BuildWorkload(*prog_, 4);
    machine::MachineConfig cfg = machine::SmpServerConfig(4);
    cfg.mem.memory_bytes = 1 << 23;
    target_ = std::make_unique<machine::Machine>(cfg, &prog_->image());
    InitData(*target_, workload_);
    before_ = Fingerprint(*target_, workload_.x, workload_.data_end);
  }

  // The restore must fail with a diagnostic and leave the target machine
  // bit-identical — and still able to run the workload to completion.
  void ExpectRejected(const std::vector<std::uint8_t>& blob,
                      const std::string& error_substring) {
    std::string error;
    EXPECT_FALSE(target_->RestoreCheckpoint(blob, &error));
    EXPECT_NE(error.find(error_substring), std::string::npos)
        << "error was: " << error;
    EXPECT_EQ(before_, Fingerprint(*target_, workload_.x, workload_.data_end));
    rt::Team team(target_.get(), 4);
    RunRep(team, workload_, 4);
    EXPECT_GT(TotalRetired(*target_), 0u);
  }

  std::vector<std::uint8_t> blob_;
  std::unique_ptr<kgen::Program> prog_;
  Workload workload_;
  std::unique_ptr<machine::Machine> target_;
  std::string before_;
};

TEST_F(SnapshotRejection, CorruptedPayloadByte) {
  std::vector<std::uint8_t> bad = blob_;
  bad[bad.size() / 2] ^= 0xff;
  ExpectRejected(bad, "checksum");
}

TEST_F(SnapshotRejection, TruncatedBlob) {
  std::vector<std::uint8_t> bad = blob_;
  bad.resize(bad.size() - 9);
  ExpectRejected(bad, "truncated");
}

TEST_F(SnapshotRejection, EmptyBlob) {
  ExpectRejected({}, "truncated");
}

TEST_F(SnapshotRejection, BadMagic) {
  std::vector<std::uint8_t> bad = blob_;
  bad[0] ^= 0xff;
  ExpectRejected(bad, "magic");
}

TEST_F(SnapshotRejection, VersionMismatch) {
  // Layout: [magic u64][format_version u32] — the header sits outside the
  // checksum, so bumping the version exercises the version gate itself.
  std::vector<std::uint8_t> bad = blob_;
  bad[8] = static_cast<std::uint8_t>(support::kSnapshotFormatVersion + 1);
  ExpectRejected(bad, "version");
}

TEST_F(SnapshotRejection, WrongProtocolShape) {
  // A MESI SMP blob aimed at a MOESI machine of the same geometry: the
  // shape gate rejects before any state is mutated.
  machine::MachineConfig cfg = machine::SmpServerConfig(4);
  cfg.mem.memory_bytes = 1 << 23;
  cfg.mem.protocol = mem::Protocol::kMoesi;
  kgen::Program prog;
  const Workload w = BuildWorkload(prog, 4);
  machine::Machine moesi(cfg, &prog.image());
  InitData(moesi, w);
  const std::string before = Fingerprint(moesi, w.x, w.data_end);
  std::string error;
  EXPECT_FALSE(moesi.RestoreCheckpoint(blob_, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(before, Fingerprint(moesi, w.x, w.data_end));
}

TEST_F(SnapshotRejection, WrongGeometryShape) {
  // Same protocol, different CPU count and fabric (the NUMA host).
  machine::MachineConfig cfg = machine::AltixConfig(8);
  cfg.mem.memory_bytes = 1 << 23;
  kgen::Program prog;
  const Workload w = BuildWorkload(prog, 8);
  machine::Machine numa(cfg, &prog.image());
  InitData(numa, w);
  const std::string before = Fingerprint(numa, w.x, w.data_end);
  std::string error;
  EXPECT_FALSE(numa.RestoreCheckpoint(blob_, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(before, Fingerprint(numa, w.x, w.data_end));
}

// --- StateWriter/StateReader protocol-level checks -----------------------

TEST(SnapshotFormat, PrimitivesRoundTripThroughNestedSections) {
  support::StateWriter w;
  w.BeginSection("outer");
  w.U8(0x5a);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  w.F64(3.25);
  w.Bool(true);
  w.Str("nested sections");
  w.BeginSection("inner");
  w.U64(7);
  w.EndSection();
  w.EndSection();
  const std::vector<std::uint8_t> blob = w.Finish();

  support::StateReader r;
  ASSERT_TRUE(r.Open(blob)) << r.error();
  ASSERT_TRUE(r.EnterSection("outer"));
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  bool b = false;
  std::string s;
  EXPECT_TRUE(r.U8(&u8));
  EXPECT_TRUE(r.U32(&u32));
  EXPECT_TRUE(r.U64(&u64));
  EXPECT_TRUE(r.I64(&i64));
  EXPECT_TRUE(r.F64(&f64));
  EXPECT_TRUE(r.Bool(&b));
  EXPECT_TRUE(r.Str(&s));
  EXPECT_EQ(u8, 0x5a);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f64, 3.25);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "nested sections");
  ASSERT_TRUE(r.EnterSection("inner"));
  std::uint64_t seven = 0;
  EXPECT_TRUE(r.U64(&seven));
  EXPECT_EQ(seven, 7u);
  EXPECT_TRUE(r.ExitSection());
  EXPECT_TRUE(r.ExitSection());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotFormat, SectionNameMismatchFails) {
  support::StateWriter w;
  w.BeginSection("alpha");
  w.U64(1);
  w.EndSection();
  const std::vector<std::uint8_t> blob = w.Finish();

  support::StateReader r;
  ASSERT_TRUE(r.Open(blob));
  EXPECT_FALSE(r.EnterSection("beta"));
  EXPECT_NE(r.error().find("section mismatch"), std::string::npos);
}

TEST(SnapshotFormat, UnderConsumedSectionFailsOnExit) {
  support::StateWriter w;
  w.BeginSection("alpha");
  w.U64(1);
  w.U64(2);
  w.EndSection();
  const std::vector<std::uint8_t> blob = w.Finish();

  support::StateReader r;
  ASSERT_TRUE(r.Open(blob));
  ASSERT_TRUE(r.EnterSection("alpha"));
  std::uint64_t v = 0;
  EXPECT_TRUE(r.U64(&v));
  EXPECT_FALSE(r.ExitSection());  // one u64 still unread
  EXPECT_FALSE(r.Ok());
}

}  // namespace
}  // namespace cobra
