// Fault-injection tests for the coherence checker: corrupt one piece of
// simulated state behind the protocol's back and assert the checker aborts
// naming the violated invariant and the line address.
//
// Each test runs a small real workload first (all threads read one shared
// line, each thread dirties its own line) so the caches and directory are
// populated the honest way, then flips exactly one bit of state.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "isa/assembler.h"
#include "isa/instruction.h"
#include "kgen/program.h"
#include "machine/engine.h"
#include "machine/machine.h"
#include "mem/coherence.h"
#include "mem/directory.h"
#include "rt/team.h"
#include "verify/coherence_checker.h"

namespace cobra::verify {
namespace {

using mem::Mesi;

struct RanWorkload {
  std::unique_ptr<kgen::Program> prog;
  std::unique_ptr<machine::Machine> m;
  mem::Addr shared_line = 0;  // every CPU ends holding this line Shared
  mem::Addr own_base = 0;     // CPU i ends holding own_base + i*128 Modified
};

RanWorkload RunSharedReadWorkload(machine::MachineConfig cfg, int threads) {
  using namespace cobra::isa;
  RanWorkload w;
  w.prog = std::make_unique<kgen::Program>();
  w.shared_line = w.prog->Alloc(256);
  w.own_base = w.prog->Alloc(static_cast<std::uint64_t>(threads) * 128 + 128);

  Assembler a(&w.prog->image());
  const auto loop = a.NewLabel();
  a.Emit(MovImm(30, 31));  // 32 iterations
  a.Emit(MovToAr(AppReg::kLC, 30));
  a.FlushBundle();
  a.Bind(loop);
  a.Emit(Ld(8, 29, 8));    // shared read: all threads hit the same line
  a.Emit(St(8, 9, 10));    // private dirty line per thread
  a.Emit(AddImm(10, 10, 1));
  a.EmitBranch(BrCloop(0), loop);
  a.Emit(Break());
  const Addr entry = a.Finish();

  cfg.verify_coherence = true;
  w.m = std::make_unique<machine::Machine>(cfg, &w.prog->image());
  rt::Team team(w.m.get(), threads, machine::EngineConfig{});
  const mem::Addr shared = w.shared_line;
  const mem::Addr own = w.own_base;
  team.Run(entry, [shared, own](int tid, cpu::RegisterFile& regs) {
    regs.WriteGr(8, shared);
    regs.WriteGr(9, own + static_cast<std::uint64_t>(tid) * 128);
    regs.WriteGr(10, 0x100 + static_cast<std::uint64_t>(tid));
  });
  return w;
}

std::string HexLine(mem::Addr line_addr) {
  std::ostringstream out;
  out << "line 0x" << std::hex << line_addr;
  return out.str();
}

// --- The workload itself is clean -------------------------------------------

TEST(VerifyChecker, CleanWorkloadPassesAllSweeps) {
  RanWorkload w = RunSharedReadWorkload(machine::SmpServerConfig(4), 4);
  ASSERT_NE(w.m->checker(), nullptr);
  w.m->checker()->CheckAll();  // must not abort
  const CoherenceChecker::Stats stats = w.m->checker()->stats();
  EXPECT_GT(stats.transactions, 0u);
  EXPECT_GT(stats.loads, 0u);
  EXPECT_GT(stats.stores, 0u);
  EXPECT_GT(stats.lines_settled, 0u);
  EXPECT_GE(stats.sweeps, 1u);  // the end-of-run sweep at minimum
}

TEST(VerifyChecker, EnvVarForcesCheckerOn) {
  ::setenv("COBRA_VERIFY", "1", 1);
  machine::MachineConfig cfg = machine::SmpServerConfig(2);
  cfg.verify_coherence = false;
  kgen::Program prog;
  machine::Machine m(cfg, &prog.image());
  ::unsetenv("COBRA_VERIFY");
  EXPECT_NE(m.checker(), nullptr);
}

TEST(VerifyChecker, FailureContextRoundTrips) {
  SetFailureContext("fuzz seed=42");
  EXPECT_EQ(FailureContext(), "fuzz seed=42");
  SetFailureContext("");
  EXPECT_TRUE(FailureContext().empty());
}

// --- Seeded corruption: MESI states -----------------------------------------

using VerifyCheckerDeath = ::testing::Test;

TEST(VerifyCheckerDeath, SecondModifiedCopyViolatesSingleWriter) {
  RanWorkload w = RunSharedReadWorkload(machine::SmpServerConfig(4), 4);
  // Every CPU holds shared_line Shared; promoting one copy to Modified
  // behind the protocol's back creates an M+S mix.
  w.m->stack(1).TestOnlyCorruptLine(w.shared_line, Mesi::kM);
  EXPECT_DEATH(w.m->checker()->CheckAll(), "single-writer");
}

TEST(VerifyCheckerDeath, AbortNamesTheLineAddress) {
  RanWorkload w = RunSharedReadWorkload(machine::SmpServerConfig(4), 4);
  w.m->stack(1).TestOnlyCorruptLine(w.shared_line, Mesi::kE);
  EXPECT_DEATH(w.m->checker()->CheckAll(), HexLine(w.shared_line));
}

TEST(VerifyCheckerDeath, L2DesyncViolatesLockstep) {
  RanWorkload w = RunSharedReadWorkload(machine::SmpServerConfig(4), 4);
  // Corrupt only the L2 copy: L3 keeps the honest state.
  auto* l2_line = w.m->stack(0).TestOnlyL2().Probe(w.shared_line);
  ASSERT_NE(l2_line, nullptr);
  l2_line->state = Mesi::kM;
  EXPECT_DEATH(w.m->checker()->CheckLineSettled(w.shared_line),
               "cache-lockstep");
}

// --- Seeded corruption: directory -------------------------------------------

TEST(VerifyCheckerDeath, DroppedSharerBitCaught) {
  RanWorkload w = RunSharedReadWorkload(machine::AltixConfig(4), 4);
  auto* dir = dynamic_cast<mem::DirectoryFabric*>(&w.m->fabric());
  ASSERT_NE(dir, nullptr);
  auto* entry = dir->TestOnlyMutableEntry(w.shared_line);
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->sharers, 0u);
  entry->sharers &= entry->sharers - 1;  // drop one genuine sharer bit
  EXPECT_DEATH(w.m->checker()->CheckLineSettled(w.shared_line),
               "directory-sharers");
}

TEST(VerifyCheckerDeath, WrongDirectoryOwnerCaught) {
  RanWorkload w = RunSharedReadWorkload(machine::AltixConfig(4), 4);
  // CPU 2's private line is Modified there; blame a different owner.
  const mem::Addr dirty_line = w.own_base + 2 * 128;
  ASSERT_EQ(w.m->stack(2).LineState(dirty_line), Mesi::kM);
  auto* dir = dynamic_cast<mem::DirectoryFabric*>(&w.m->fabric());
  ASSERT_NE(dir, nullptr);
  auto* entry = dir->TestOnlyMutableEntry(dirty_line);
  ASSERT_NE(entry, nullptr);
  entry->owner = 0;
  EXPECT_DEATH(w.m->checker()->CheckLineSettled(dirty_line),
               "directory-owner");
}

// --- Seeded corruption: memory values ---------------------------------------

TEST(VerifyCheckerDeath, SilentMemoryCorruptionCaught) {
  RanWorkload w = RunSharedReadWorkload(machine::SmpServerConfig(4), 4);
  // Flip a functional-memory byte without going through a core: the
  // sequentially-consistent oracle still holds the honest value.
  const std::uint64_t honest = w.m->memory().Read(w.own_base, 8);
  w.m->memory().Write(w.own_base, 8, honest ^ 0xff);
  EXPECT_DEATH(
      w.m->checker()->DiffShadow(w.own_base, 8, "fault-injection test"),
      "golden-memory");
}

TEST(VerifyCheckerDeath, AbortPrintsReplayContext) {
  RanWorkload w = RunSharedReadWorkload(machine::SmpServerConfig(4), 4);
  w.m->stack(1).TestOnlyCorruptLine(w.shared_line, Mesi::kM);
  SetFailureContext("rerun with COBRA_FUZZ_SEED=1234");
  EXPECT_DEATH(w.m->checker()->CheckAll(), "COBRA_FUZZ_SEED=1234");
  SetFailureContext("");
}

}  // namespace
}  // namespace cobra::verify
