// Paper-conformance trend tests (ctest label `trends`): run the quick
// benchmark suite in-process once and assert the *directions* the paper's
// figures claim — not exact numbers, which depend on the timing model's
// constants, but the ordering relations COBRA's design argument rests on:
//
//   Fig. 5   COBRA speeds NPB up over the prefetch baseline, on the SMP
//            bus machine and the NUMA directory machine alike.
//   Fig. 6   COBRA's noprefetch optimization cuts L3 misses; ADORE-style
//            insertion cuts *demand* L3 misses on a noprefetch binary.
//   Fig. 7a  Adaptive `.excl` hints generate far less invalidation
//            traffic than a binary compiled with always-on `.excl`.
//   Fig. 7b  On NUMA, plain `.nt1` removal (noprefetch) beats `.excl`.
//
// The same document feeds the golden-schema test: the report's shape
// (keys and value types, not values) is pinned to
// tests/golden/bench_schema.txt, and the serialized report must round-trip
// through the support::Json parser unchanged.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "compare.h"
#include "mem/protocol.h"
#include "suite.h"
#include "support/json.h"

namespace cobra {
namespace {

using support::Json;

// One quick-suite run shared by every test in this binary (~10 s total; a
// per-test run would multiply that by the assertion count).
const Json& Report() {
  static const Json* doc = [] {
    bench::SuiteOptions options;
    options.quick = true;
    return new Json(bench::RunPaperSuite(options));
  }();
  return *doc;
}

const Json& Experiment(const std::string& name) {
  for (const Json& e : Report().At("experiments").elements()) {
    if (e.At("name").AsString() == name) return e;
  }
  ADD_FAILURE() << "experiment not found: " << name;
  static const Json missing = Json::Object();
  return missing;
}

double Derived(const std::string& experiment, const std::string& key) {
  return Experiment(experiment).At("derived").At(key).AsDouble();
}

// CI replays the quick suite under every COBRA_PROTOCOL. The paper's
// figure trends were measured on invalidation-based fabrics; under the
// update-based protocol the class-S kernels are BusUpd-bound, prefetch
// removal does not pay, and COBRA's measured epochs correctly roll the
// deployments back. The Fig. 5/6/7 tests therefore assert the rollback
// guarantee ("adaptation never hurts") instead of the win.
bool AmbientUpdateBased() {
  return Report().At("protocol").AsString() == "dragon";
}

TEST(PaperTrends, EverySimulatedRunVerifies) {
  for (const Json& e : Report().At("experiments").elements()) {
    for (const Json& row : e.At("rows").elements()) {
      const Json* verified = row.Find("verified");
      if (verified != nullptr) {
        EXPECT_TRUE(verified->AsBool())
            << e.At("name").AsString() << " row failed functional "
            << "verification: " << row.Dump();
      }
    }
  }
}

TEST(PaperTrends, CodegenShapeMatchesFigure2) {
  EXPECT_TRUE(Experiment("fig2_codegen").At("derived").At("shape_ok").AsBool());
}

// Figure 3: at the cache-resident working set, removing the compiler's
// prefetches speeds the 4-thread DAXPY up (the motivation for the paper).
TEST(PaperTrends, DaxpyNoprefetchWinsAtSmallWorkingSet) {
  EXPECT_GT(Derived("fig3_daxpy", "noprefetch_speedup_4t_128k"), 1.0);
}

// Figure 5: average COBRA (noprefetch) speedup over the prefetch baseline
// is above 1 on both machines — the baseline's speedup is 1 by definition,
// so this is "COBRA >= baseline".
TEST(PaperTrends, CobraBeatsBaselineOnSmpAndNuma) {
  if (AmbientUpdateBased()) {
    EXPECT_GE(Derived("npb_smp", "speedup_noprefetch_avg"), 0.98);
    EXPECT_GE(Derived("npb_numa", "speedup_noprefetch_avg"), 0.98);
    return;
  }
  EXPECT_GT(Derived("npb_smp", "speedup_noprefetch_avg"), 1.0);
  EXPECT_GT(Derived("npb_numa", "speedup_noprefetch_avg"), 1.0);
}

// Figure 6: the optimization that wins (noprefetch) wins *because* it cuts
// L3 misses — the average per-benchmark L3 ratio vs baseline is below 1.
TEST(PaperTrends, NoprefetchCutsL3Misses) {
  if (AmbientUpdateBased()) {
    // Nothing stays deployed, so the miss profile must match the baseline.
    EXPECT_LE(Derived("npb_smp", "l3_ratio_noprefetch_avg"), 1.01);
    EXPECT_LE(Derived("npb_numa", "l3_ratio_noprefetch_avg"), 1.01);
    return;
  }
  EXPECT_LT(Derived("npb_smp", "l3_ratio_noprefetch_avg"), 1.0);
  EXPECT_LT(Derived("npb_numa", "l3_ratio_noprefetch_avg"), 1.0);
}

// Figure 6 / ADORE: runtime prefetch *insertion* into a noprefetch binary
// cuts demand L3 misses (and speeds the memory-bound DAXPY up).
TEST(PaperTrends, InsertionCutsDemandL3Misses) {
  EXPECT_LT(Derived("adore_insertion", "demand_l3_inserted_over_bare"), 1.0);
  EXPECT_GT(Derived("adore_insertion", "speedup_inserted_vs_bare"), 1.0);
}

// Extension: profile-confirmed static chrecs let the controller deploy
// after one on-lattice confirmation instead of stride_confirmations of
// them — the first trace goes live strictly earlier, and DAXPY's clean
// affine streams never contradict the static solution.
TEST(PaperTrends, StaticPriorsCutTimeToFirstDeploy) {
  EXPECT_GT(Derived("static_priors", "prior_hits"), 0.0);
  EXPECT_EQ(
      Experiment("static_priors").At("rows").elements()[1]
          .At("prior_mismatches").AsInt(),
      0);
  EXPECT_GT(Derived("static_priors", "first_deploy_off"), 0.0);
  EXPECT_GT(Derived("static_priors", "first_deploy_on"), 0.0);
  EXPECT_LT(Derived("static_priors", "first_deploy_on"),
            Derived("static_priors", "first_deploy_off"));
}

// Extension (DESIGN.md §9): the cost-model planner must never lose to the
// per-loop heuristic — within 1% on every ablation workload — and must win
// strictly on the NUMA false-sharing case, where it prices the remote RFO
// traffic of eager `.excl` deployment and declines the candidate the
// heuristic deploys blindly. The planner workloads pin MESI explicitly,
// so the trend holds under any ambient COBRA_PROTOCOL.
TEST(PaperTrends, PlannerNeverLosesToHeuristic) {
  EXPECT_LE(Derived("planner", "cost_over_heuristic_smp"), 1.01);
  EXPECT_LE(Derived("planner", "cost_over_heuristic_numa"), 1.01);
  EXPECT_LE(Derived("planner", "cost_over_heuristic_phase"), 1.01);
  EXPECT_LT(Derived("planner", "cost_over_heuristic_numa"), 1.0);
}

// The hysteresis protocol under a phase-shifting schedule: once the second
// phase's latency mass overtakes the first's, fresh solves flip — and the
// cooldown suppresses the revision instead of thrashing the plan. The kept
// measured epoch on the coherent workload feeds the realized-benefit side
// of the estimate ledger.
TEST(PaperTrends, PlannerHysteresisHoldsPlanAcrossPhases) {
  EXPECT_GT(Derived("planner", "phase_rejected_hysteresis"), 0.0);
  EXPECT_GT(Derived("planner", "estimated_benefit_cycles"), 0.0);
  EXPECT_GT(Derived("planner", "realized_benefit_cycles"), 0.0);
}

// Figure 7a: COBRA deploys `.excl` hints adaptively (measured epochs revert
// them where they hurt), so its invalidation traffic — ownership upgrades
// plus read-for-ownership HITM transfers — stays far below the always-on
// `.excl` binary's.
TEST(PaperTrends, AdaptiveExclInvalidatesLessThanAlwaysOn) {
  // The whole suite may run under an ambient COBRA_PROTOCOL (CI does, for
  // all four). Under the update-based protocol there is no invalidation
  // traffic to contrast — `.excl` degrades to a plain prefetch — so the
  // figure's claim reduces to "both sides are zero".
  if (Report().At("protocol").AsString() == "dragon") {
    EXPECT_EQ(Derived("npb_smp", "invalidations_static_excl_total"), 0.0);
    EXPECT_EQ(Derived("npb_smp", "snoop_invalidations_static_excl_total"),
              0.0);
    return;
  }
  EXPECT_LT(Derived("npb_smp", "invalidations_cobra_excl_total"),
            Derived("npb_smp", "invalidations_static_excl_total"));
  EXPECT_LT(Derived("npb_smp", "snoop_invalidations_cobra_excl_total"),
            Derived("npb_smp", "snoop_invalidations_static_excl_total"));
}

// --- Coherence-protocol contrasts (protocol_matrix) -------------------------
// These run each protocol pinned explicitly, so they hold under any
// ambient COBRA_PROTOCOL.

// Dragon is update-based: stores to shared lines broadcast BusUpd and
// nothing is ever invalidated. The invalidation protocols are the mirror
// image: ownership traffic, zero updates.
TEST(PaperTrends, DragonUpdatesInsteadOfInvalidating) {
  EXPECT_EQ(Derived("protocol_matrix", "dragon_invalidations_total"), 0.0);
  EXPECT_EQ(Derived("protocol_matrix", "dragon_snoop_invalidations_total"),
            0.0);
  EXPECT_GT(Derived("protocol_matrix", "dragon_updates_total"), 0.0);
  EXPECT_GT(Derived("protocol_matrix", "mesi_invalidations_total"), 0.0);
  EXPECT_EQ(Derived("protocol_matrix", "mesi_updates_total"), 0.0);
  EXPECT_EQ(Derived("protocol_matrix", "mesif_updates_total"), 0.0);
}

// MESIF's Forward state sources clean lines cache-to-cache, which MESI
// always fetches from memory; MOESI's Owned state additionally shares
// dirty lines without the implicit writeback. Both must move at least as
// many lines cache-to-cache as MESI on identical workloads.
TEST(PaperTrends, ForwardingProtocolsMoveMoreLinesCacheToCache) {
  EXPECT_GT(Derived("protocol_matrix", "mesif_c2c_total"),
            Derived("protocol_matrix", "mesi_c2c_total"));
  EXPECT_GE(Derived("protocol_matrix", "moesi_c2c_total"),
            Derived("protocol_matrix", "mesi_c2c_total"));
}

// Figure 7b: on the NUMA machine, exclusive-hinted prefetches steal shared
// lines across the directory fabric; plain prefetch removal (`.nt1`-style)
// is the better strategy there.
TEST(PaperTrends, NumaPrefersNoprefetchOverExcl) {
  if (AmbientUpdateBased()) {
    // `.excl` degrades to a plain prefetch under Dragon, so the two
    // strategies converge rather than contrast.
    EXPECT_GE(Derived("npb_numa", "speedup_noprefetch_avg"),
              Derived("npb_numa", "speedup_excl_avg"));
    return;
  }
  EXPECT_GT(Derived("npb_numa", "speedup_noprefetch_avg"),
            Derived("npb_numa", "speedup_excl_avg"));
}

TEST(PaperTrends, SampledSimulationTracksFullRuns) {
  // DESIGN.md §12: the two-pass sampled pipeline must agree with the full
  // detailed run on the *direction* of COBRA's effect while simulating at
  // most a third of the instructions in detail (the >= 3x wall-clock
  // claim). The error bound is loose — the quick suite's scaled-down MG
  // sits near 3.5% — but a sampling regression (cold representatives,
  // distorted epochs) overshoots it by an order of magnitude.
  const Json& e = Experiment("sampled_accuracy");
  EXPECT_TRUE(e.At("derived").At("directional_ok").AsBool());
  EXPECT_LE(Derived("sampled_accuracy", "speedup_error"), 0.15);
  EXPECT_LE(Derived("sampled_accuracy", "detailed_fraction_max"), 1.0 / 3.0);
  EXPECT_GE(Derived("sampled_accuracy", "wall_reduction_proxy"), 3.0);
  // Every sampled run warmed its representatives through real checkpoint
  // round-trips, and both run styles verified functionally.
  for (const Json& row : e.At("rows").elements()) {
    EXPECT_GT(row.At("checkpoints").AsInt(), 0) << row.Dump();
    EXPECT_GT(row.At("checkpoint_bytes").AsInt(), 0) << row.Dump();
    EXPECT_TRUE(row.At("verified").AsBool()) << row.Dump();
  }
}

// --- Report document contract ---------------------------------------------

TEST(BenchReport, RoundTripsThroughParser) {
  const std::string text = Report().Dump();
  std::string error;
  const auto parsed = Json::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(BenchReport, SchemaMatchesGolden) {
  std::ifstream in(std::string(COBRA_GOLDEN_DIR) + "/bench_schema.txt");
  ASSERT_TRUE(in.good()) << "missing golden file " << COBRA_GOLDEN_DIR
                         << "/bench_schema.txt";
  std::stringstream golden;
  golden << in.rdbuf();
  std::string expected = golden.str();
  // Trim the trailing newline the generator writes.
  while (!expected.empty() &&
         (expected.back() == '\n' || expected.back() == '\r')) {
    expected.pop_back();
  }
  // The signature erases values, so this holds for any engine, any machine
  // and --quick or not. Regenerate after an intentional schema change with:
  //   cobra_bench --suite=paper --quick --schema > tests/golden/bench_schema.txt
  EXPECT_EQ(Report().SchemaSignature(), expected);

  // Round-tripping must preserve the schema, not just the text.
  const auto parsed = Json::Parse(Report().Dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->SchemaSignature(), expected);
}

// --- Report comparison (cobra_bench --compare) -----------------------------

TEST(CompareReports, SelfCompareIsIdentical) {
  const bench::CompareResult r = bench::CompareReports(Report(), Report());
  EXPECT_TRUE(r.identical());
  EXPECT_EQ(r.total_diffs, 0u);
}

TEST(CompareReports, FlagsDriftButIgnoresHostKeys) {
  Json expected = Json::Object();
  expected.Set("cycles", 100);
  Json exp_host = Json::Object();
  exp_host.Set("wall_seconds", 1.5);
  expected.Set("host", std::move(exp_host));

  // Identical sim metrics, wildly different host perf: no drift.
  Json same = Json::Object();
  same.Set("cycles", 100);
  Json same_host = Json::Object();
  same_host.Set("wall_seconds", 99.0);
  same_host.Set("sim_mips", 3.0);  // even extra host keys are ignored
  same.Set("host", std::move(same_host));
  EXPECT_TRUE(bench::CompareReports(expected, same).identical());

  // A drifted sim counter is one difference with a path.
  Json drifted = Json::Object();
  drifted.Set("cycles", 101);
  const bench::CompareResult r = bench::CompareReports(expected, drifted);
  EXPECT_EQ(r.total_diffs, 1u);
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_NE(r.diffs[0].find("$.cycles"), std::string::npos);

  // Missing / extra non-host keys and kind mismatches all count.
  Json renamed = Json::Object();
  renamed.Set("cycle_count", 100);
  EXPECT_EQ(bench::CompareReports(expected, renamed).total_diffs, 2u);
  Json restrung = Json::Object();
  restrung.Set("cycles", "100");
  EXPECT_EQ(bench::CompareReports(expected, restrung).total_diffs, 1u);
}

TEST(BenchReport, MatchesCommittedGoldenQuickMetrics) {
  // The CI bench-smoke job runs `cobra_bench --suite=paper --quick
  // --compare=tests/golden/bench_quick_metrics.json`; this is the same
  // contract in-process, so a drifting simulation fails the test suite even
  // without the driver. Re-bless an intentional model change with:
  //   cobra_bench --suite=paper --quick
  //     --json=tests/golden/bench_quick_metrics.json
  // The golden values are blessed under the default protocol; an ambient
  // COBRA_PROTOCOL changes fabric timing (and the fabric.<protocol>.*
  // metric names), so only the MESI run is value-comparable.
  if (Report().At("protocol").AsString() != "mesi") {
    GTEST_SKIP() << "golden quick metrics are blessed under mesi; ambient "
                    "protocol is "
                 << Report().At("protocol").AsString();
  }
  std::ifstream in(std::string(COBRA_GOLDEN_DIR) +
                   "/bench_quick_metrics.json");
  ASSERT_TRUE(in.good()) << "missing golden file " << COBRA_GOLDEN_DIR
                         << "/bench_quick_metrics.json";
  std::stringstream text;
  text << in.rdbuf();
  std::string error;
  const auto golden = Json::Parse(text.str(), &error);
  ASSERT_TRUE(golden.has_value()) << error;
  // Compare the experiments subtree, not the header: results are
  // bit-identical across engines, but the header's "engine" string is not
  // (this test must pass under COBRA_ENGINE=parallel too).
  const bench::CompareResult r = bench::CompareReports(
      golden->At("experiments"), Report().At("experiments"));
  for (const std::string& diff : r.diffs) ADD_FAILURE() << diff;
  EXPECT_EQ(r.total_diffs, 0u);
}

TEST(BenchReport, HeaderIdentifiesTheRun) {
  EXPECT_EQ(Report().At("schema_version").AsInt(), 1);
  EXPECT_EQ(Report().At("generator").AsString(), "cobra_bench");
  EXPECT_EQ(Report().At("suite").AsString(), "paper");
  EXPECT_TRUE(Report().At("quick").AsBool());
  EXPECT_EQ(Report().At("protocol").AsString(),
            mem::ProtocolName(mem::ProtocolFromEnv(mem::Protocol::kMesi)));
  // Every declared experiment ran (no --only filter here).
  EXPECT_EQ(Report().At("experiments").size(),
            bench::PaperExperimentNames().size());
}

}  // namespace
}  // namespace cobra
