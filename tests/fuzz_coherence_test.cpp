// Deterministic coherence fuzzing: seeded random workloads run on the
// Section 5.1 machines with the coherence checker + golden memory oracle
// enabled, under both the serial and the parallel engine.
//
// Each case must (a) complete with zero invariant violations — the checker
// aborts the process otherwise, printing the seed and engine spec — and
// (b) produce bit-identical fingerprints (timing state, coherence
// counters, data-segment hash) across engines.
//
// Knobs:
//   COBRA_FUZZ_CASES=<n>  seeds per machine shape (default 50)
//   COBRA_FUZZ_SEED=<n>   replay exactly one seed (overrides CASES)
//   COBRA_VERIFY=1        additionally deploy every emitted loop of each
//                         case through the trace cache and run the
//                         patch-safety verifier on deploy/revert/re-apply
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "isa/image.h"
#include "machine/engine.h"
#include "mem/protocol.h"
#include "tjit/tcache.h"
#include "verify/fuzz.h"

namespace cobra::verify {
namespace {

int CasesFromEnv() {
  if (const char* env = std::getenv("COBRA_FUZZ_CASES"); env && *env != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 50;
}

bool SeedFromEnv(std::uint64_t* seed) {
  if (const char* env = std::getenv("COBRA_FUZZ_SEED"); env && *env != '\0') {
    *seed = std::strtoull(env, nullptr, 0);
    return true;
  }
  return false;
}

bool VerifyFromEnv() {
  const char* env = std::getenv("COBRA_VERIFY");
  return env != nullptr && *env != '\0' && *env != '0';
}

machine::EngineConfig SerialEngine() { return machine::EngineConfig{}; }

machine::EngineConfig ParallelEngine() {
  machine::EngineConfig c;
  c.kind = machine::EngineKind::kParallel;
  c.host_threads = 4;
  return c;
}

void RunSweep(FuzzCase (*make)(std::uint64_t), std::uint64_t seed_base) {
  std::uint64_t replay_seed = 0;
  const bool replay = SeedFromEnv(&replay_seed);
  const bool verify = VerifyFromEnv();
  const int cases = replay ? 1 : CasesFromEnv();
  int verifier_passes = 0;
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed =
        replay ? replay_seed : seed_base + static_cast<std::uint64_t>(i);
    const FuzzCase c = make(seed);
    const std::string serial = RunFuzzCase(c, SerialEngine());
    const std::string parallel = RunFuzzCase(c, ParallelEngine());
    ASSERT_EQ(serial, parallel)
        << "engine fingerprints diverged; replay with COBRA_FUZZ_SEED=" << seed
        << " (machine " << c.machine_name << ")";
    // A verifier violation aborts inside the call — reaching the next
    // iteration is the zero-false-positive assertion.
    if (verify) verifier_passes += VerifyFuzzDeployments(c);
  }
  if (verify) {
    std::printf("[ COBRA    ] patch verifier: %d passes over %d cases\n",
                verifier_passes, cases);
  }
}

TEST(CoherenceFuzz, SmpSerialMatchesParallel) { RunSweep(&SmpFuzzCase, 1000); }

TEST(CoherenceFuzz, NumaSerialMatchesParallel) {
  RunSweep(&NumaFuzzCase, 2000);
}

// Per-protocol conformance battery: every seed runs under all four
// coherence protocols on both machine shapes, serial and parallel, with
// the checker's protocol-specific invariant sets armed. Each protocol must
// (a) survive with zero invariant violations, (b) be engine-deterministic,
// and (c) agree with every other protocol on the final architectural
// memory image — the protocol decides *when* data moves, never *what* the
// program computes. Runs 16 machine executions per seed, so it uses fewer
// seeds than the single-protocol sweeps.
void RunProtocolSweep(FuzzCase (*make)(std::uint64_t),
                      std::uint64_t seed_base) {
  static constexpr mem::Protocol kProtocols[] = {
      mem::Protocol::kMesi, mem::Protocol::kMoesi, mem::Protocol::kDragon,
      mem::Protocol::kMesif};
  std::uint64_t replay_seed = 0;
  const bool replay = SeedFromEnv(&replay_seed);
  const int cases = replay ? 1 : std::min(CasesFromEnv(), 12);
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed =
        replay ? replay_seed : seed_base + static_cast<std::uint64_t>(i);
    std::string baseline_image;
    for (const mem::Protocol protocol : kProtocols) {
      const FuzzCase c = WithProtocol(make(seed), protocol);
      const std::string serial = RunFuzzCase(c, SerialEngine());
      const std::string parallel = RunFuzzCase(c, ParallelEngine());
      ASSERT_EQ(serial, parallel)
          << "engine fingerprints diverged; replay with COBRA_FUZZ_SEED="
          << seed << " (machine " << c.machine_name << ")";
      const std::string image = MemoryImageOf(serial);
      if (protocol == mem::Protocol::kMesi) {
        baseline_image = image;
      } else {
        ASSERT_EQ(image, baseline_image)
            << "final memory image diverged from the MESI baseline under "
            << mem::ProtocolName(protocol)
            << "; replay with COBRA_FUZZ_SEED=" << seed << " (machine "
            << c.machine_name << ")";
      }
    }
  }
}

// Scalar-evolution soundness: every static affine / loop-invariant address
// claim of every solved loop is cross-checked against the address streams
// the cores actually perform. One contradicted delta anywhere fails the
// sweep — static analysis is only useful as a prior if it never lies.
void RunScevSweep(FuzzCase (*make)(std::uint64_t), std::uint64_t seed_base) {
  std::uint64_t replay_seed = 0;
  const bool replay = SeedFromEnv(&replay_seed);
  const int cases = replay ? 1 : CasesFromEnv();
  ScevSoundnessResult total;
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed =
        replay ? replay_seed : seed_base + static_cast<std::uint64_t>(i);
    const ScevSoundnessResult r =
        CheckScevSoundness(make(seed), SerialEngine());
    ASSERT_EQ(r.contradictions, 0u)
        << r.first_contradiction
        << "; replay with COBRA_FUZZ_SEED=" << seed;
    total.loops_solved += r.loops_solved;
    total.claims += r.claims;
    total.deltas_checked += r.deltas_checked;
  }
  // The sweep must have exercised real claims, or it proves nothing.
  EXPECT_GT(total.loops_solved, 0u);
  EXPECT_GT(total.deltas_checked, 0u);
  std::printf(
      "[ COBRA    ] scev soundness: %llu loops solved, %llu claims, "
      "%llu deltas checked, 0 contradictions\n",
      static_cast<unsigned long long>(total.loops_solved),
      static_cast<unsigned long long>(total.claims),
      static_cast<unsigned long long>(total.deltas_checked));
}

TEST(ScevSoundness, SmpStaticClaimsMatchObservedStreams) {
  RunScevSweep(&SmpFuzzCase, 3000);
}

TEST(ScevSoundness, NumaStaticClaimsMatchObservedStreams) {
  RunScevSweep(&NumaFuzzCase, 4000);
}

TEST(CoherenceFuzz, SmpAllProtocolsConformAndAgreeOnMemory) {
  RunProtocolSweep(&SmpFuzzCase, 7000);
}

TEST(CoherenceFuzz, NumaAllProtocolsConformAndAgreeOnMemory) {
  RunProtocolSweep(&NumaFuzzCase, 8000);
}

// Exec-plan invalidation under live patching: each seed's workload runs
// interleaved with trace-cache deploy / revert / re-apply cycles, once with
// the per-slot plan cache enabled (the production configuration) and once
// with PlanAt rebuilding from the decoded twin on every fetch (the
// never-cached reference). The fingerprints must be bit-identical: any slot
// whose cached plan survived a patch would execute stale semantics and
// diverge. Under COBRA_VERIFY=1 (the CI verified sweep re-runs this label)
// the patch-safety verifier additionally checks every deployment step.
void RunPlanCacheSweep(FuzzCase (*make)(std::uint64_t),
                       std::uint64_t seed_base,
                       const machine::EngineConfig& engine) {
  std::uint64_t replay_seed = 0;
  const bool replay = SeedFromEnv(&replay_seed);
  // Each seed executes the workload ~10x (per patch state), so this sweep
  // uses fewer seeds than the engine-equivalence sweeps.
  const int cases = replay ? 1 : std::min(CasesFromEnv(), 8);
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed =
        replay ? replay_seed : seed_base + static_cast<std::uint64_t>(i);
    const FuzzCase c = make(seed);
    const std::string cached = RunFuzzCaseWithDeployments(c, engine);
    isa::BinaryImage::TestOnlySetPlanCacheEnabled(false);
    const std::string uncached = RunFuzzCaseWithDeployments(c, engine);
    isa::BinaryImage::TestOnlySetPlanCacheEnabled(true);
    ASSERT_EQ(cached, uncached)
        << "plan cache diverged from the never-cached reference; replay "
           "with COBRA_FUZZ_SEED="
        << seed << " (machine " << c.machine_name << ")";
  }
}

TEST(CoherenceFuzz, PlanCacheInvalidationSmp) {
  RunPlanCacheSweep(&SmpFuzzCase, 3000, SerialEngine());
}

TEST(CoherenceFuzz, PlanCacheInvalidationNuma) {
  RunPlanCacheSweep(&NumaFuzzCase, 4000, ParallelEngine());
}

// Translation-cache staleness audit: the same deploy / revert / re-apply
// schedules, run once with the trace JIT compiling and chaining superblocks
// and once forced onto the pure interpreter. Superblocks snapshot exec
// plans at compile time, so any block that survived a patch (a missed
// plan_generation flush) would execute the pre-patch code and diverge the
// fingerprint — timing state, coherence counters and the data-segment hash
// all at once. Machines capture COBRA_TJIT at construction, so the toggle
// wraps the whole run.
void RunTjitSweep(FuzzCase (*make)(std::uint64_t), std::uint64_t seed_base,
                  const machine::EngineConfig& engine) {
  std::uint64_t replay_seed = 0;
  const bool replay = SeedFromEnv(&replay_seed);
  const int cases = replay ? 1 : std::min(CasesFromEnv(), 8);
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed =
        replay ? replay_seed : seed_base + static_cast<std::uint64_t>(i);
    const FuzzCase c = make(seed);
    const std::string jitted = RunFuzzCaseWithDeployments(c, engine);
    tjit::TestOnlySetTjitEnabled(false);
    const std::string interpreted = RunFuzzCaseWithDeployments(c, engine);
    tjit::TestOnlySetTjitEnabled(true);
    ASSERT_EQ(jitted, interpreted)
        << "superblock execution diverged from the interpreter under live "
           "patching; replay with COBRA_FUZZ_SEED="
        << seed << " (machine " << c.machine_name << ")";
  }
}

TEST(CoherenceFuzz, TjitInvalidationSmp) {
  RunTjitSweep(&SmpFuzzCase, 5000, SerialEngine());
}

TEST(CoherenceFuzz, TjitInvalidationNuma) {
  RunTjitSweep(&NumaFuzzCase, 6000, ParallelEngine());
}

}  // namespace
}  // namespace cobra::verify
