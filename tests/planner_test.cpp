// Cost-model planner test suite (`ctest -L planner`).
//
// Three layers:
//   1. SolvePlan against an exhaustive-subset oracle: every feasible
//      subset (budget + one-patch-per-head) of small candidate sets is
//      enumerated, and the solver must match the optimum exactly on the
//      authored <=6-candidate cases and stay within the greedy
//      (1 - 1/e) bound on seeded kgen-derived cases of up to 10
//      candidates. Budget edges (zero budget, budget covering every
//      cost) and determinism (input-order invariance, tie-breaking by
//      canonical order) ride along.
//   2. Planner hysteresis: the cooldown window and the minimum profit
//      delta must keep an oscillating phase signal from thrashing the
//      plan — no revision inside the cooldown, every suppressed solve
//      counted, and Reset() re-arming adoption after a phase change.
//   3. A reduced fuzz cross-check: seeded workloads run under an
//      attached runtime with COBRA_PLANNER=heuristic vs =cost must
//      produce bit-identical final memory images (the planner only
//      picks which semantics-preserving patches go live), with the
//      patch-safety verifier passing throughout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "cobra/controller.h"
#include "cobra/planner.h"
#include "kgen/program.h"
#include "machine/engine.h"
#include "machine/machine.h"
#include "support/rng.h"
#include "verify/fuzz.h"

namespace cobra::core {
namespace {

constexpr double kEps = 1e-9;  // feasibility epsilon, mirrors SolvePlan

PlanCandidate Cand(isa::Addr head, OptKind kind, double benefit, double cost) {
  PlanCandidate c;
  c.head = head;
  c.back_branch_pc = head + 0x40;
  c.kind = kind;
  c.benefit = benefit;
  c.cost = cost;
  return c;
}

// Exhaustive oracle: best total benefit over every subset that fits the
// budget, takes at most one candidate per head, and only picks candidates
// with positive benefit (matching the solver's contract).
double OracleBest(const std::vector<PlanCandidate>& cands, double budget) {
  const int n = static_cast<int>(cands.size());
  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double benefit = 0.0;
    double cost = 0.0;
    std::set<isa::Addr> heads;
    bool feasible = true;
    for (int i = 0; i < n && feasible; ++i) {
      if ((mask >> i & 1) == 0) continue;
      if (cands[i].benefit <= 0.0) feasible = false;
      if (!heads.insert(cands[i].head).second) feasible = false;
      benefit += cands[i].benefit;
      cost += cands[i].cost;
    }
    if (!feasible || cost > budget + kEps) continue;
    best = std::max(best, benefit);
  }
  return best;
}

std::string Describe(const Plan& plan) {
  std::string out;
  for (const PlanCandidate& c : plan.accepted) {
    out += std::to_string(c.head) + ":" + OptKindName(c.kind) + " ";
  }
  return out;
}

// ---------------------------------------------------------------------------
// SolvePlan: oracle conformance and budget edges.

TEST(SolvePlan, EmptyInputYieldsEmptyPlan) {
  const Plan plan = SolvePlan({}, 10.0);
  EXPECT_TRUE(plan.accepted.empty());
  EXPECT_EQ(plan.total_benefit, 0.0);
  EXPECT_EQ(plan.total_cost, 0.0);
  EXPECT_EQ(plan.rejected_budget, 0u);
}

TEST(SolvePlan, ZeroBudgetRejectsEveryPositiveCandidate) {
  const std::vector<PlanCandidate> cands = {
      Cand(0x1000, OptKind::kNoprefetch, 100.0, 1.0),
      Cand(0x2000, OptKind::kPrefetchExcl, 50.0, 2.0),
      Cand(0x3000, OptKind::kInsertPrefetch, 10.0, 1.5),
  };
  const Plan plan = SolvePlan(cands, 0.0);
  EXPECT_TRUE(plan.accepted.empty());
  EXPECT_EQ(plan.rejected_budget, 3u);
  EXPECT_EQ(plan.total_benefit, 0.0);
}

TEST(SolvePlan, BudgetCoveringAllCostsAcceptsEveryHead) {
  // Distinct heads, all positive: with the budget above the total cost the
  // plan must take one patch per head and reject nothing on budget.
  const std::vector<PlanCandidate> cands = {
      Cand(0x1000, OptKind::kNoprefetch, 100.0, 1.0),
      Cand(0x2000, OptKind::kPrefetchExcl, 50.0, 2.0),
      Cand(0x3000, OptKind::kInsertPrefetch, 10.0, 1.5),
  };
  const Plan plan = SolvePlan(cands, 100.0);
  EXPECT_EQ(plan.accepted.size(), 3u);
  EXPECT_EQ(plan.rejected_budget, 0u);
  EXPECT_DOUBLE_EQ(plan.total_benefit, 160.0);
  EXPECT_DOUBLE_EQ(plan.total_cost, 4.5);
}

TEST(SolvePlan, NonPositiveBenefitNeverSelected) {
  // Zero and negative estimates are dropped up front — not accepted, and
  // not counted as budget rejections either.
  const std::vector<PlanCandidate> cands = {
      Cand(0x1000, OptKind::kNoprefetch, 0.0, 1.0),
      Cand(0x2000, OptKind::kPrefetchExcl, -25.0, 1.0),
      Cand(0x3000, OptKind::kNoprefetch, 40.0, 1.0),
  };
  const Plan plan = SolvePlan(cands, 100.0);
  ASSERT_EQ(plan.accepted.size(), 1u);
  EXPECT_EQ(plan.accepted[0].head, 0x3000u);
  EXPECT_EQ(plan.rejected_budget, 0u);
}

TEST(SolvePlan, OnePatchPerHead) {
  // Both kinds fit the budget, but they target the same region: exactly
  // one — the more beneficial — may go live.
  const std::vector<PlanCandidate> cands = {
      Cand(0x1000, OptKind::kNoprefetch, 60.0, 1.0),
      Cand(0x1000, OptKind::kPrefetchExcl, 90.0, 1.0),
  };
  const Plan plan = SolvePlan(cands, 100.0);
  ASSERT_EQ(plan.accepted.size(), 1u);
  EXPECT_EQ(plan.accepted[0].kind, OptKind::kPrefetchExcl);
  EXPECT_EQ(plan.rejected_budget, 1u);
  EXPECT_DOUBLE_EQ(OracleBest(cands, 100.0), plan.total_benefit);
}

TEST(SolvePlan, ExchangeRecoversFromGreedyTrap) {
  // Density-greedy takes the small dense item first (density 6 > 5.5) and
  // then cannot afford the big one; the optimum is the big item alone.
  // The 1-out/1-in exchange (or the best-single-item guard) must fix it.
  const std::vector<PlanCandidate> cands = {
      Cand(0x1000, OptKind::kNoprefetch, 6.0, 1.0),
      Cand(0x2000, OptKind::kNoprefetch, 55.0, 10.0),
  };
  const Plan plan = SolvePlan(cands, 10.0);
  ASSERT_EQ(plan.accepted.size(), 1u);
  EXPECT_EQ(plan.accepted[0].head, 0x2000u);
  EXPECT_DOUBLE_EQ(plan.total_benefit, 55.0);
  EXPECT_DOUBLE_EQ(OracleBest(cands, 10.0), 55.0);
}

TEST(SolvePlan, ExactOnAuthoredSmallCases) {
  // Authored <=6-candidate instances, each exhaustively enumerated: the
  // solver must hit the optimum exactly (ISSUE acceptance bound).
  struct Case {
    std::vector<PlanCandidate> cands;
    double budget;
  };
  const std::vector<Case> cases = {
      // Two-of-three knapsack where the densest item is not in the optimum.
      {{Cand(0x1000, OptKind::kNoprefetch, 10.0, 1.0),
        Cand(0x2000, OptKind::kNoprefetch, 29.0, 3.0),
        Cand(0x3000, OptKind::kNoprefetch, 30.0, 3.5)},
       6.5},
      // Same-head rivalry plus an independent filler.
      {{Cand(0x1000, OptKind::kNoprefetch, 40.0, 2.0),
        Cand(0x1000, OptKind::kPrefetchExcl, 42.0, 3.0),
        Cand(0x2000, OptKind::kInsertPrefetch, 12.0, 1.0)},
       4.0},
      // 2-out/1-in territory: two mid items beat one large dense item.
      {{Cand(0x1000, OptKind::kNoprefetch, 50.0, 5.0),
        Cand(0x2000, OptKind::kNoprefetch, 28.0, 2.6),
        Cand(0x3000, OptKind::kNoprefetch, 28.0, 2.6)},
       5.4},
      // 1-out/2-in territory: dense singleton blocks a better pair.
      {{Cand(0x1000, OptKind::kNoprefetch, 30.0, 3.0),
        Cand(0x2000, OptKind::kNoprefetch, 17.0, 1.6),
        Cand(0x3000, OptKind::kNoprefetch, 17.0, 1.6)},
       3.2},
      // Six candidates over four heads, mixed kinds, tight budget.
      {{Cand(0x1000, OptKind::kNoprefetch, 22.0, 2.0),
        Cand(0x1000, OptKind::kPrefetchExcl, 25.0, 3.0),
        Cand(0x2000, OptKind::kNoprefetch, 18.0, 1.5),
        Cand(0x3000, OptKind::kInsertPrefetch, 31.0, 4.0),
        Cand(0x4000, OptKind::kNoprefetch, 9.0, 1.0),
        Cand(0x4000, OptKind::kInsertPrefetch, 12.0, 2.5)},
       6.0},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Plan plan = SolvePlan(cases[i].cands, cases[i].budget);
    EXPECT_DOUBLE_EQ(plan.total_benefit,
                     OracleBest(cases[i].cands, cases[i].budget))
        << "authored case " << i << " picked " << Describe(plan);
  }
}

TEST(SolvePlan, OracleBoundOnKgenDerivedCases) {
  // Candidates derived from real kgen fuzz programs: loop heads come from
  // the seeded generator's emitted kernels, scores from a seeded stream.
  // Up to 10 candidates per case; the solver must stay within the greedy
  // (1 - 1/e) bound of the enumerated optimum everywhere, and match it
  // exactly whenever the case has at most 6 candidates.
  constexpr double kGreedyBound = 1.0 - 1.0 / M_E;
  int nonempty_cases = 0;
  int exact_cases = 0;
  for (std::uint64_t seed = 1000; seed < 1024; ++seed) {
    kgen::Program prog;
    const verify::FuzzCase c = verify::SmpFuzzCase(seed);
    (void)verify::BuildFuzzProgram(c, prog);
    if (prog.loops().empty()) continue;

    support::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    std::vector<PlanCandidate> cands;
    for (const kgen::LoopInfo& loop : prog.loops()) {
      for (const OptKind kind :
           {OptKind::kNoprefetch, OptKind::kPrefetchExcl,
            OptKind::kInsertPrefetch}) {
        if (cands.size() >= 10) break;
        PlanCandidate cand;
        cand.head = loop.head;
        cand.back_branch_pc = loop.back_branch_pc;
        cand.kind = kind;
        // Benefit in [-64, 448): some candidates score negative, as the
        // protocol-aware model produces for e.g. excl on update protocols.
        cand.benefit = rng.NextDouble(-64.0, 448.0);
        cand.cost = rng.NextDouble(0.5, 8.0);
        cands.push_back(cand);
      }
    }
    if (cands.empty()) continue;
    ++nonempty_cases;

    const double budget = rng.NextDouble(2.0, 16.0);
    const double optimum = OracleBest(cands, budget);
    const Plan plan = SolvePlan(cands, budget);
    EXPECT_GE(plan.total_benefit, kGreedyBound * optimum - kEps)
        << "seed " << seed << ": " << plan.total_benefit << " vs optimum "
        << optimum << " (" << cands.size() << " candidates)";
    if (cands.size() <= 6) {
      ++exact_cases;
      EXPECT_NEAR(plan.total_benefit, optimum, kEps)
          << "seed " << seed << " (<=6 candidates) picked " << Describe(plan);
    }
  }
  // The sweep must actually exercise the oracle, including exact cases.
  EXPECT_GE(nonempty_cases, 8);
  EXPECT_GE(exact_cases, 3);
}

TEST(SolvePlan, InputOrderInvariant) {
  std::vector<PlanCandidate> cands = {
      Cand(0x4000, OptKind::kInsertPrefetch, 12.0, 2.5),
      Cand(0x1000, OptKind::kPrefetchExcl, 25.0, 3.0),
      Cand(0x2000, OptKind::kNoprefetch, 18.0, 1.5),
      Cand(0x1000, OptKind::kNoprefetch, 22.0, 2.0),
      Cand(0x3000, OptKind::kInsertPrefetch, 31.0, 4.0),
      Cand(0x4000, OptKind::kNoprefetch, 9.0, 1.0),
  };
  const Plan reference = SolvePlan(cands, 6.0);
  support::Rng rng(7);
  for (int round = 0; round < 16; ++round) {
    // Fisher-Yates with the deterministic RNG.
    for (std::size_t i = cands.size(); i > 1; --i) {
      std::swap(cands[i - 1], cands[rng.NextBounded(i)]);
    }
    const Plan plan = SolvePlan(cands, 6.0);
    ASSERT_TRUE(plan.SameSelection(reference))
        << "round " << round << ": " << Describe(plan) << " vs "
        << Describe(reference);
    EXPECT_DOUBLE_EQ(plan.total_benefit, reference.total_benefit);
    EXPECT_DOUBLE_EQ(plan.total_cost, reference.total_cost);
  }
}

TEST(SolvePlan, TiesBreakByCanonicalOrder) {
  // Three identical candidates on different heads, budget for one: the
  // lowest head must win regardless of presentation order.
  std::vector<PlanCandidate> cands = {
      Cand(0x3000, OptKind::kNoprefetch, 10.0, 1.0),
      Cand(0x1000, OptKind::kNoprefetch, 10.0, 1.0),
      Cand(0x2000, OptKind::kNoprefetch, 10.0, 1.0),
  };
  for (int rotation = 0; rotation < 3; ++rotation) {
    std::rotate(cands.begin(), cands.begin() + 1, cands.end());
    const Plan plan = SolvePlan(cands, 1.0);
    ASSERT_EQ(plan.accepted.size(), 1u);
    EXPECT_EQ(plan.accepted[0].head, 0x1000u);
  }
  // Same head, same scores, different kinds: the lower kind rank wins.
  const Plan plan = SolvePlan({Cand(0x1000, OptKind::kInsertPrefetch, 8.0, 1.0),
                               Cand(0x1000, OptKind::kNoprefetch, 8.0, 1.0)},
                              4.0);
  ASSERT_EQ(plan.accepted.size(), 1u);
  EXPECT_EQ(plan.accepted[0].kind, OptKind::kNoprefetch);
}

// ---------------------------------------------------------------------------
// Planner hysteresis: cooldown + minimum profit delta.

std::vector<PlanCandidate> SetA() {
  return {Cand(0x1000, OptKind::kNoprefetch, 1000.0, 1.0)};
}
std::vector<PlanCandidate> SetB(double benefit) {
  return {Cand(0x2000, OptKind::kPrefetchExcl, benefit, 1.0)};
}

TEST(PlannerHysteresis, FirstAdoptionBypassesBothGates) {
  Planner planner(Planner::Options{8.0, 1e6, 1u << 60});
  const Plan& plan = planner.Propose(SetA(), /*now_cycles=*/0);
  ASSERT_EQ(plan.accepted.size(), 1u);
  EXPECT_TRUE(planner.has_plan());
  EXPECT_EQ(planner.stats().plan_revisions, 0u);
  EXPECT_EQ(planner.stats().rejected_hysteresis, 0u);
  EXPECT_EQ(planner.stats().accepted, 1u);
  EXPECT_DOUBLE_EQ(planner.stats().estimated_benefit, 1000.0);
}

TEST(PlannerHysteresis, NoRevisionWithinCooldownUnderOscillation) {
  // An oscillating phase signal flips the candidate set every proposal.
  // Inside the cooldown window every differing solve must be suppressed:
  // exactly one adoption, zero revisions, each suppression counted.
  Planner planner(Planner::Options{8.0, 0.0, /*cooldown=*/10000});
  planner.Propose(SetA(), 0);
  ASSERT_TRUE(planner.plan().Contains(0x1000));
  for (std::uint64_t step = 1; step <= 8; ++step) {
    const std::vector<PlanCandidate> cands =
        (step % 2 == 1) ? SetB(5000.0) : SetA();
    planner.Propose(cands, step * 1000);  // all inside the 10000-cycle window
  }
  EXPECT_EQ(planner.stats().plan_revisions, 0u);
  // Steps 1,3,5,7 proposed a different selection; 2,4,6,8 re-proposed the
  // standing one (a refresh, not a rejection).
  EXPECT_EQ(planner.stats().rejected_hysteresis, 4u);
  EXPECT_TRUE(planner.plan().Contains(0x1000)) << Describe(planner.plan());
}

TEST(PlannerHysteresis, RevisionLandsOnceCooldownElapses) {
  Planner planner(Planner::Options{8.0, 0.0, 10000});
  planner.Propose(SetA(), 0);
  planner.Propose(SetB(5000.0), 5000);  // suppressed: inside cooldown
  EXPECT_TRUE(planner.plan().Contains(0x1000));
  planner.Propose(SetB(5000.0), 10000);  // window elapsed: adopt
  EXPECT_TRUE(planner.plan().Contains(0x2000));
  EXPECT_EQ(planner.stats().plan_revisions, 1u);
  EXPECT_EQ(planner.stats().rejected_hysteresis, 1u);
}

TEST(PlannerHysteresis, MinProfitDeltaGatesMarginalRevisions) {
  // Cooldown disabled; the profit gate alone decides. The standing plan
  // re-scores against the fresh estimates, so a rival must beat the
  // current selection's *fresh* value by the delta.
  Planner planner(Planner::Options{8.0, /*min_profit_delta=*/500.0, 0});
  planner.Propose(SetA(), 0);
  // Rival worth +300 over the standing 1000: under the 500 delta.
  std::vector<PlanCandidate> marginal = SetA();
  marginal.push_back(Cand(0x2000, OptKind::kPrefetchExcl, 1300.0, 8.0));
  // Budget 8 forces a choice between the two heads; B alone scores 1300.
  planner.Propose(marginal, 1);
  EXPECT_TRUE(planner.plan().Contains(0x1000));
  EXPECT_EQ(planner.stats().rejected_hysteresis, 1u);
  // Rival worth +600: clears the delta, revision lands.
  std::vector<PlanCandidate> decisive = SetA();
  decisive.push_back(Cand(0x2000, OptKind::kPrefetchExcl, 1600.0, 8.0));
  planner.Propose(decisive, 2);
  EXPECT_TRUE(planner.plan().Contains(0x2000));
  EXPECT_EQ(planner.stats().plan_revisions, 1u);
}

TEST(PlannerHysteresis, SameSelectionRefreshesScoresWithoutRevision) {
  Planner planner(Planner::Options{8.0, 1e6, 1u << 60});
  planner.Propose(SetA(), 0);
  // Same (head, kind) set with a new estimate: totals refresh in place and
  // neither gate fires — the plan in force is simply re-affirmed.
  std::vector<PlanCandidate> refreshed = {
      Cand(0x1000, OptKind::kNoprefetch, 750.0, 1.0)};
  const Plan& plan = planner.Propose(refreshed, 999);
  EXPECT_DOUBLE_EQ(plan.total_benefit, 750.0);
  EXPECT_EQ(planner.stats().plan_revisions, 0u);
  EXPECT_EQ(planner.stats().rejected_hysteresis, 0u);
}

TEST(PlannerHysteresis, ResetReArmsAdoptionAfterPhaseChange) {
  Planner planner(Planner::Options{8.0, 1e6, 1u << 60});
  planner.Propose(SetA(), 0);
  planner.Propose(SetB(5000.0), 1);  // suppressed by both gates
  EXPECT_TRUE(planner.plan().Contains(0x1000));
  const std::uint64_t solves_before = planner.stats().solves;
  planner.Reset();  // phase change: forget the standing plan
  EXPECT_FALSE(planner.has_plan());
  const Plan& plan = planner.Propose(SetB(5000.0), 2);
  EXPECT_TRUE(plan.Contains(0x2000));
  EXPECT_TRUE(planner.has_plan());
  EXPECT_EQ(planner.stats().solves, solves_before + 1);  // stats preserved
}

TEST(PlannerHysteresis, EmptySolveBeforeFirstPlanDoesNotArmCooldown) {
  // Early wakes often produce zero candidates. They must not start the
  // cooldown clock, or the first real plan would be suppressed.
  Planner planner(Planner::Options{8.0, 0.0, 1u << 60});
  planner.Propose({}, 0);
  EXPECT_FALSE(planner.has_plan());
  const Plan& plan = planner.Propose(SetA(), 1);
  EXPECT_EQ(plan.accepted.size(), 1u);
  EXPECT_TRUE(planner.has_plan());
}

// ---------------------------------------------------------------------------
// Controller integration + reduced fuzz cross-check.

TEST(PlannerController, ExportsPlannerMetricFamily) {
  kgen::Program prog;
  const verify::FuzzCase c = verify::SmpFuzzCase(1002);
  (void)verify::BuildFuzzProgram(c, prog);
  machine::Machine m(c.machine, &prog.image());
  CobraConfig config;
  config.planner = PlannerKind::kCost;
  CobraRuntime cobra(&m, config);
  const obs::Snapshot snap = m.registry().Take();
  for (const char* name :
       {"cobra.planner.candidates", "cobra.planner.accepted",
        "cobra.planner.rejected_budget", "cobra.planner.rejected_hysteresis",
        "cobra.planner.plan_revisions",
        "cobra.planner.estimated_benefit_cycles",
        "cobra.planner.realized_benefit_cycles"}) {
    EXPECT_TRUE(snap.Has(name)) << name;
  }
}

TEST(PlannerFuzz, CostPlannerPreservesMemoryImages) {
  // Reduced corpus of the cobra_fuzz --planner sweep: heuristic and cost
  // runs of the same seeded workload must agree on the final memory image,
  // and the patch-safety verifier must pass on every deploy (it aborts the
  // process on a violation — a false positive by construction).
  const machine::EngineConfig engine;  // serial
  std::uint64_t verifier_passes = 0;
  std::uint64_t cost_deployments = 0;
  std::uint64_t replay_seed = 0;
  std::vector<verify::FuzzCase> cases;
  if (const char* env = std::getenv("COBRA_FUZZ_SEED");
      env != nullptr && *env != '\0') {
    replay_seed = std::strtoull(env, nullptr, 0);
    cases.push_back(verify::SmpFuzzCase(replay_seed));
    cases.push_back(verify::NumaFuzzCase(replay_seed));
  } else {
    for (std::uint64_t i = 0; i < 5; ++i) {
      cases.push_back(verify::SmpFuzzCase(1000 + i));
      cases.push_back(verify::NumaFuzzCase(2000 + i));
    }
  }
  for (const verify::FuzzCase& c : cases) {
    const verify::PlannerCrossCheck xc =
        verify::RunFuzzCaseWithPlanner(c, engine);
    EXPECT_EQ(verify::MemoryImageOf(xc.heuristic_fingerprint),
              verify::MemoryImageOf(xc.cost_fingerprint))
        << "memory images diverged; replay with COBRA_FUZZ_SEED=" << c.seed
        << " (machine " << c.machine_name << ")";
    verifier_passes += xc.verifier_passes;
    cost_deployments += xc.cost_deployments;
  }
  if (replay_seed == 0) {
    // The default corpus is chosen to exercise real deployments on both
    // machine shapes, so the cross-check is not vacuous.
    EXPECT_GT(cost_deployments, 0u);
    EXPECT_GT(verifier_passes, 0u);
  }
}

}  // namespace
}  // namespace cobra::core
