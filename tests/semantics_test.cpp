// Property tests for the architectural semantics the whole system rests
// on: software-pipelined loop branches execute exact trip counts across
// pipeline depths and trip counts, and the memory system's bookkeeping is
// self-consistent (every L3 miss is exactly one bus data transaction).
#include <gtest/gtest.h>

#include <memory>

#include "isa/assembler.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "rt/team.h"

namespace cobra {
namespace {

using isa::Addr;
using namespace isa;

// Builds a D-stage software-pipelined copy kernel:
//   (p16) ldfd f32=[r26],8 ; (p16+D) stfd [r27]=f(32+D),8 ; br.ctop
// args: r14 = src, r15 = dst, r16 = n.
Addr EmitPipelinedCopy(BinaryImage& image, int stages) {
  Assembler a(&image);
  const Addr entry = image.code_end();
  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();
  a.Emit(ClrRrb());
  a.Emit(CmpImm(CmpRel::kLe, 8, 0, 16, 0));
  a.EmitBranch(BrCond(8, 0), exit);
  a.Emit(MovReg(26, 14));
  a.Emit(MovReg(27, 15));
  a.Emit(AddImm(9, 16, -1));
  a.Emit(MovToAr(AppReg::kLC, 9));
  a.Emit(MovImm(10, stages + 1));
  a.Emit(MovToAr(AppReg::kEC, 10));
  a.Emit(MovToPrRot(1));
  a.FlushBundle();
  a.Bind(loop);
  a.Emit(Pred(16, LdfPostInc(32, 26, 8)));
  a.Emit(Pred(16 + stages, StfPostInc(27, 32 + stages, 8)));
  a.EmitBranch(BrCtop(0), loop);
  a.Bind(exit);
  a.Emit(Break());
  a.Finish();
  return entry;
}

struct PipelineCase {
  int stages;
  int n;
};

class SwpTripCount : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(SwpTripCount, CopiesExactlyNElements) {
  const auto [stages, n] = GetParam();
  isa::BinaryImage image;
  const Addr entry = EmitPipelinedCopy(image, stages);
  machine::MachineConfig cfg = machine::SmpServerConfig(1);
  cfg.mem.memory_bytes = 1 << 20;
  machine::Machine machine(cfg, &image);
  const Addr src = 0x4000, dst = 0x8000;
  for (int i = 0; i < n + 8; ++i) {
    machine.memory().WriteDouble(src + 8 * static_cast<Addr>(i), 10.0 + i);
    machine.memory().WriteDouble(dst + 8 * static_cast<Addr>(i), -1.0);
  }
  rt::Team team(&machine, 1);
  team.Run(entry, [&](int, cpu::RegisterFile& regs) {
    regs.WriteGr(14, src);
    regs.WriteGr(15, dst);
    regs.WriteGr(16, static_cast<std::uint64_t>(n));
  });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(machine.memory().ReadDouble(dst + 8 * static_cast<Addr>(i)),
              10.0 + i)
        << "stages=" << stages << " n=" << n << " i=" << i;
  }
  // No overrun: the epilogue drain must not store past n elements.
  EXPECT_EQ(machine.memory().ReadDouble(dst + 8 * static_cast<Addr>(n)),
            -1.0);
}

INSTANTIATE_TEST_SUITE_P(
    DepthAndTripSweep, SwpTripCount,
    ::testing::Values(PipelineCase{1, 1}, PipelineCase{1, 2},
                      PipelineCase{1, 7}, PipelineCase{1, 33},
                      PipelineCase{2, 1}, PipelineCase{2, 3},
                      PipelineCase{2, 32}, PipelineCase{4, 1},
                      PipelineCase{4, 5}, PipelineCase{4, 64},
                      PipelineCase{7, 2}, PipelineCase{7, 100}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      return "d" + std::to_string(info.param.stages) + "_n" +
             std::to_string(info.param.n);
    });

// --- Memory-system accounting invariant -----------------------------------------

TEST(Accounting, EveryL3MissIsOneBusDataTransaction) {
  // Run the full prefetching DAXPY on 4 threads and cross-check: bus data
  // transactions == all stacks' L3 misses + all dirty-victim writebacks
  // (upgrades are address-only and excluded on both sides).
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  constexpr std::int64_t kN = 32768;  // 512K: evictions + sharing
  const mem::Addr x = prog.Alloc(kN * 8);
  const mem::Addr y = prog.Alloc(kN * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(4);
  cfg.mem.memory_bytes = 1 << 24;
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<mem::Addr>(i), 2.0);
  }
  rt::Team team(&machine, 4);
  for (int rep = 0; rep < 6; ++rep) {
    team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, 4, kN);
      regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 0.5);
    });
  }
  std::uint64_t l3_misses = 0, writebacks = 0;
  for (int cpu = 0; cpu < 4; ++cpu) {
    l3_misses += machine.stack(cpu).L3Misses();
    writebacks += machine.stack(cpu).stats().fabric_writebacks;
  }
  const auto& bus = machine.fabric().TotalCounts();
  EXPECT_EQ(bus.bus_memory, l3_misses + writebacks);
  EXPECT_EQ(bus.bus_writebacks, writebacks);
}

TEST(Accounting, HpmMatchesFabricAttribution) {
  // The per-CPU HPM bus counters must sum to the fabric totals.
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  const mem::Addr x = prog.Alloc(8192 * 8);
  const mem::Addr y = prog.Alloc(8192 * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(2);
  cfg.mem.memory_bytes = 1 << 23;
  machine::Machine machine(cfg, &prog.image());
  rt::Team team(&machine, 2);
  for (int rep = 0; rep < 4; ++rep) {
    team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, 2, 8192);
      regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 0.5);
    });
  }
  const auto& total = machine.fabric().TotalCounts();
  std::uint64_t sum_memory = 0, sum_hitm = 0, sum_hit = 0;
  for (int cpu = 0; cpu < 2; ++cpu) {
    const auto& mine = machine.fabric().CpuCounts(cpu);
    sum_memory += mine.bus_memory;
    sum_hitm += mine.bus_rd_hitm;
    sum_hit += mine.bus_rd_hit;
  }
  EXPECT_EQ(total.bus_memory, sum_memory);
  EXPECT_EQ(total.bus_rd_hitm, sum_hitm);
  EXPECT_EQ(total.bus_rd_hit, sum_hit);
}

}  // namespace
}  // namespace cobra
