// COBRA framework tests: profile aggregation, loop discovery from BTB
// samples, the two-level DEAR filter, trace-cache deployment/rollback
// mechanics (including behavioural equivalence of patched binaries), the
// optimizers, and the end-to-end runtime on the DAXPY pathology.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cobra/cobra.h"
#include "isa/assembler.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "rt/team.h"

namespace cobra::core {
namespace {

using isa::Addr;

// --- ThreadProfile ------------------------------------------------------------

perfmon::Sample MakeSample(std::uint64_t index, Addr pc) {
  perfmon::Sample sample;
  sample.index = index;
  sample.pc = pc;
  return sample;
}

TEST(ThreadProfile, DearRecordsDedupAndClassify) {
  ThreadProfile profile(/*coherent_latency_threshold=*/180);
  perfmon::Sample s = MakeSample(0, 0x1000);
  s.dear = cpu::Dear::Record{0x1010, 0x9000, 130, true};
  profile.AddSample(s);
  // Same record carried in the next sample: must not double count.
  s.index = 1;
  profile.AddSample(s);
  // A new, coherent-latency record.
  s.index = 2;
  s.dear = cpu::Dear::Record{0x1010, 0x9080, 195, true};
  profile.AddSample(s);

  ASSERT_EQ(profile.loads().size(), 1u);
  const DelinquentLoad& load = profile.loads().begin()->second;
  EXPECT_EQ(load.samples, 2u);
  EXPECT_EQ(load.coherent_samples, 1u);
  EXPECT_EQ(load.total_latency, 130u + 195u);
}

// Feeds one DEAR record per sample and returns the resulting load entry.
DelinquentLoad RunDearStream(std::initializer_list<Addr> data_addrs) {
  ThreadProfile profile;
  std::uint64_t index = 0;
  for (const Addr addr : data_addrs) {
    perfmon::Sample s = MakeSample(index++, 0x1000);
    s.dear = cpu::Dear::Record{0x1010, addr, 130, true};
    profile.AddSample(s);
  }
  return profile.loads().begin()->second;
}

TEST(ThreadProfile, StrideConfirmationIsDirectionIndependent) {
  // Ascending stream around stride 256, wobbling by 8 — inside the
  // max(|stride|/8, 64) tolerance.
  const DelinquentLoad up = RunDearStream({0x9000, 0x9100, 0x9208, 0x9300});
  EXPECT_EQ(up.stride, 256);
  EXPECT_EQ(up.stride_confirmations, 3u);
  // The mirror-image descending stream must confirm identically.
  const DelinquentLoad down = RunDearStream({0x9300, 0x9200, 0x90f8, 0x9000});
  EXPECT_EQ(down.stride, -256);
  EXPECT_EQ(down.stride_confirmations, 3u);
}

TEST(ThreadProfile, StrideToleranceFloorIsSymmetricNearSmallStrides) {
  // |stride| = 8 puts the tolerance at the floor (64). A wobble of 56 in
  // magnitude must confirm for both directions.
  const DelinquentLoad up = RunDearStream({0x9000, 0x9008, 0x9048});
  EXPECT_EQ(up.stride, 8);
  EXPECT_EQ(up.stride_confirmations, 2u);
  const DelinquentLoad down = RunDearStream({0x9048, 0x9040, 0x9000});
  EXPECT_EQ(down.stride, -8);
  EXPECT_EQ(down.stride_confirmations, 2u);
}

TEST(ThreadProfile, StrideSignFlipRestartsConfirmation) {
  // Two confirmed ascending deltas, then the stream turns around: the
  // direction check must reset the candidate, not confirm by magnitude.
  const DelinquentLoad load = RunDearStream({0x9000, 0x9100, 0x9200, 0x9100});
  EXPECT_EQ(load.stride, -256);
  EXPECT_EQ(load.stride_confirmations, 1u);
}

TEST(StaticPriorArbitration, MismatchLaterConfirmedDynamically) {
  // Regression for the stride_confirmations x static_priors interplay: a
  // dynamic stride that first *contradicts* the static chrec is held back
  // (kMismatch), but when the profiled stream later locks onto the
  // lattice, the very next confirmation must arbitrate kConfirmed — the
  // prior fast path deploys on a single confirmation, even though the
  // sign flip that preceded it reset the confirmation counter to one.
  kgen::Program prog;
  const kgen::LoopInfo daxpy = EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  const analysis::LoopScev scev =
      analysis::AnalyzeLoop(prog.image(), daxpy.head, daxpy.back_branch_pc);
  ASSERT_TRUE(scev.solved);
  const analysis::MemAccess* affine = nullptr;
  for (const analysis::MemAccess& access : scev.accesses) {
    if (access.cls == analysis::AddrClass::kAffine) affine = &access;
  }
  ASSERT_NE(affine, nullptr);
  ASSERT_GT(affine->stride, 0);

  // Phase 1: the DEAR stream runs *against* the static direction — the
  // profile's stride is off the lattice and the load is held back.
  const std::int64_t s = affine->stride;
  const Addr base = 0x9000;
  const DelinquentLoad descending = RunDearStream(
      {base + 2 * s, base + s, base});  // stride -s, 2 confirmations
  EXPECT_EQ(descending.stride, -s);
  EXPECT_EQ(ArbitrateStaticPrior(scev, affine->pc, descending.stride),
            PriorVerdict::kMismatch);

  // Phase 2: the stream turns around onto the static stride. The sign
  // flip restarts confirmation at one — below any stride_confirmations
  // setting above 1 — yet the prior must qualify the load immediately.
  const DelinquentLoad converged = RunDearStream(
      {base + 2 * s, base + s, base, base + s});  // tail delta +s
  EXPECT_EQ(converged.stride, s);
  EXPECT_EQ(converged.stride_confirmations, 1u);
  const CobraConfig config;
  EXPECT_LT(converged.stride_confirmations,
            static_cast<std::uint64_t>(config.stride_confirmations));
  EXPECT_EQ(ArbitrateStaticPrior(scev, affine->pc, converged.stride),
            PriorVerdict::kConfirmed);

  // Off-lattice strides stay held back; an unanalyzed pc carries no prior.
  EXPECT_EQ(ArbitrateStaticPrior(scev, affine->pc, s + 4),
            PriorVerdict::kMismatch);
  EXPECT_EQ(ArbitrateStaticPrior(scev, affine->pc, 0),
            PriorVerdict::kMismatch);
  EXPECT_EQ(ArbitrateStaticPrior(scev, /*load_pc=*/0, s),
            PriorVerdict::kNoPrior);
}

TEST(ThreadProfile, LoopDiscoveryFromBackwardBranches) {
  ThreadProfile profile;
  perfmon::Sample s = MakeSample(0, 0x1000);
  s.btb[0] = {0x1042, 0x1020};  // backward: loop [0x1020, 0x1042]
  s.btb[1] = {0x1010, 0x1050};  // forward: not a loop
  profile.AddSample(s);
  profile.AddSample(MakeSample(1, 0x1001));  // empty BTB: no-op

  ASSERT_EQ(profile.loops().size(), 1u);
  const LoopCandidate& loop = profile.loops().begin()->second;
  EXPECT_EQ(loop.head, 0x1020u);
  EXPECT_EQ(loop.back_branch_pc, 0x1042u);
  EXPECT_EQ(loop.hits, 1u);
}

TEST(SystemProfile, AggregatesAndSortsByHotness) {
  ThreadProfile a, b;
  perfmon::Sample s = MakeSample(0, 0);
  s.btb[0] = {0x1042, 0x1020};
  s.btb[1] = {0x2042, 0x2020};
  a.AddSample(s);
  perfmon::Sample t = MakeSample(0, 0);
  t.btb[0] = {0x2042, 0x2020};
  b.AddSample(t);

  const SystemProfile merged = SystemProfile::Aggregate({&a, &b});
  ASSERT_EQ(merged.hot_loops.size(), 2u);
  EXPECT_EQ(merged.hot_loops[0].head, 0x2020u);  // 2 hits
  EXPECT_EQ(merged.hot_loops[0].hits, 2u);
  EXPECT_EQ(merged.hot_loops[1].head, 0x1020u);
}

TEST(CounterTotals, CoherentRatio) {
  CounterTotals totals;
  totals.bus_memory = 200;
  totals.bus_rd_hitm = 30;
  totals.bus_rd_hit = 20;
  EXPECT_DOUBLE_EQ(totals.CoherentRatio(), 0.25);
  EXPECT_DOUBLE_EQ(CounterTotals{}.CoherentRatio(), 0.0);
}

// --- Optimizer over raw images -------------------------------------------------

TEST(Optimizer, FindAndRewriteLfetches) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(isa::Lfetch(40), isa::Nop(),
                                     isa::Pred(16, isa::LfetchPostInc(41, 8)));
  const Addr b1 = image.AppendBundle(isa::Nop(), isa::Lfetch(42),
                                     isa::Break());
  auto pcs = FindLfetches(image, b0, b1);
  ASSERT_EQ(pcs.size(), 3u);

  EXPECT_EQ(ApplyOptimization(image, b0, b1, OptKind::kNoprefetch), 3);
  EXPECT_EQ(image.Fetch(pcs[0]).op, isa::Opcode::kNop);
  EXPECT_EQ(image.Fetch(pcs[1]).op, isa::Opcode::kAddImm);  // post-inc kept
  EXPECT_TRUE(FindLfetches(image, b0, b1).empty());
}

TEST(Optimizer, ExclSetsHintOnceAndCounts) {
  isa::BinaryImage image;
  isa::LfetchHint excl;
  excl.excl = true;
  const Addr b0 = image.AppendBundle(isa::Lfetch(40), isa::Lfetch(41, excl),
                                     isa::Nop());
  // Only the plain lfetch is rewritten; the pre-hinted one is left alone.
  EXPECT_EQ(ApplyOptimization(image, b0, b0, OptKind::kPrefetchExcl), 1);
  EXPECT_TRUE(image.Fetch(isa::MakePc(b0, 0)).lf_hint.excl);
  EXPECT_EQ(ApplyOptimization(image, b0, b0, OptKind::kPrefetchExcl), 0);
}

TEST(Optimizer, NoneKindLeavesCodeUntouched) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(isa::Lfetch(40), isa::Nop(), isa::Nop());
  EXPECT_EQ(ApplyOptimization(image, b0, b0, OptKind::kNone), 0);
  EXPECT_EQ(image.Fetch(isa::MakePc(b0, 0)).op, isa::Opcode::kLfetch);
}

// --- TraceCache -----------------------------------------------------------------

class TraceCacheFixture : public ::testing::Test {
 protected:
  // A DAXPY program plus machinery to execute and verify it.
  void Build() {
    info_ = EmitDaxpy(prog_, "daxpy", kgen::PrefetchPolicy{});
    x_ = prog_.Alloc(kN * 8);
    y_ = prog_.Alloc(kN * 8);
    machine::MachineConfig cfg = machine::SmpServerConfig(2);
    cfg.mem.memory_bytes = 1 << 22;
    machine_ = std::make_unique<machine::Machine>(cfg, &prog_.image());
    team_ = std::make_unique<rt::Team>(machine_.get(), 2);
  }

  void InitArrays() {
    for (int i = 0; i < kN; ++i) {
      machine_->memory().WriteDouble(x_ + 8 * static_cast<Addr>(i), 1.0 + i);
      machine_->memory().WriteDouble(y_ + 8 * static_cast<Addr>(i), 5.0 - i);
    }
  }

  void RunDaxpy() {
    team_->Run(info_.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, 2, kN);
      regs.WriteGr(14, x_ + 8 * static_cast<Addr>(chunk.begin));
      regs.WriteGr(15, y_ + 8 * static_cast<Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 2.0);
    });
  }

  bool VerifyOnePass() {
    for (int i = 0; i < kN; ++i) {
      const double expected = 2.0 * (1.0 + i) + (5.0 - i);
      if (machine_->memory().ReadDouble(y_ + 8 * static_cast<Addr>(i)) !=
          expected) {
        return false;
      }
    }
    return true;
  }

  static constexpr int kN = 257;
  kgen::Program prog_;
  kgen::LoopInfo info_;
  Addr x_ = 0, y_ = 0;
  std::unique_ptr<machine::Machine> machine_;
  std::unique_ptr<rt::Team> team_;
};

TEST_F(TraceCacheFixture, DeployPreservesBehaviour) {
  Build();
  TraceCache cache(&prog_.image());
  const int id = cache.Deploy(
      LoopRegion{info_.head, info_.back_branch_pc}, OptKind::kNoprefetch);
  ASSERT_GE(id, 0);
  EXPECT_TRUE(cache.Get(id)->active);
  EXPECT_GT(cache.Get(id)->lfetches_rewritten, 0);
  // The original head bundle now redirects into the code cache.
  const isa::Instruction branch =
      prog_.image().Fetch(isa::MakePc(info_.head, 2));
  EXPECT_EQ(branch.op, isa::Opcode::kBrl);
  EXPECT_TRUE(prog_.image().InCodeCache(cache.Get(id)->trace_head));

  InitArrays();
  RunDaxpy();
  EXPECT_TRUE(VerifyOnePass());  // optimized trace computes the same values
}

TEST_F(TraceCacheFixture, RevertRestoresOriginalBits) {
  Build();
  const isa::EncodedSlot before[3] = {
      prog_.image().Raw(isa::MakePc(info_.head, 0)),
      prog_.image().Raw(isa::MakePc(info_.head, 1)),
      prog_.image().Raw(isa::MakePc(info_.head, 2))};
  TraceCache cache(&prog_.image());
  const int id = cache.Deploy(
      LoopRegion{info_.head, info_.back_branch_pc}, OptKind::kNoprefetch);
  ASSERT_GE(id, 0);
  cache.Revert(id);
  EXPECT_FALSE(cache.Get(id)->active);
  for (unsigned slot = 0; slot < 3; ++slot) {
    EXPECT_EQ(prog_.image().Raw(isa::MakePc(info_.head, slot)),
              before[slot]);
  }
  // Reapply re-redirects without rebuilding.
  const auto built = cache.traces_built();
  cache.Reapply(id);
  EXPECT_TRUE(cache.Get(id)->active);
  EXPECT_EQ(cache.traces_built(), built);
  InitArrays();
  RunDaxpy();
  EXPECT_TRUE(VerifyOnePass());
}

TEST_F(TraceCacheFixture, DoubleDeployRefusedWhileActive) {
  Build();
  TraceCache cache(&prog_.image());
  const LoopRegion region{info_.head, info_.back_branch_pc};
  const int first = cache.Deploy(region, OptKind::kNoprefetch);
  ASSERT_GE(first, 0);
  EXPECT_EQ(cache.Deploy(region, OptKind::kPrefetchExcl), -1);
  cache.Revert(first);
  // After revert, redeploying (e.g. with the other strategy) is allowed.
  const int second = cache.Deploy(region, OptKind::kPrefetchExcl);
  EXPECT_GE(second, 0);
  EXPECT_NE(second, first);
}

TEST_F(TraceCacheFixture, RefusesEscapingRegions) {
  Build();
  // A region with a forward branch escaping it (the kernel entry guard).
  TraceCache cache(&prog_.image());
  const LoopRegion bogus{info_.entry, info_.back_branch_pc};
  EXPECT_EQ(cache.Deploy(bogus, OptKind::kNoprefetch), -1);
}

TEST_F(TraceCacheFixture, RefusesCodeCacheRegions) {
  Build();
  TraceCache cache(&prog_.image());
  const int id = cache.Deploy(
      LoopRegion{info_.head, info_.back_branch_pc}, OptKind::kNone);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  // The trace's own loop must not be re-deployed (infinite regress).
  const Addr trace_back = trace_head + (isa::BundleAddr(info_.back_branch_pc) -
                                        isa::BundleAddr(info_.head));
  EXPECT_EQ(cache.Deploy(LoopRegion{trace_head, isa::MakePc(trace_back, 2)},
                         OptKind::kNoprefetch),
            -1);
}

// --- End-to-end runtime on the DAXPY pathology -----------------------------------

class RuntimeFixture : public ::testing::Test {
 protected:
  struct RunResult {
    Cycle cycles = 0;
    bool verified = false;
  };

  // Runs `reps` DAXPY passes over a small working set with 2 threads,
  // optionally under COBRA; returns wall cycles for the measured reps.
  RunResult Run(bool with_cobra, const CobraConfig& config, int reps = 30) {
    kgen::Program prog;
    const kgen::LoopInfo daxpy =
        EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
    constexpr std::int64_t kN = 8192;  // 128K working set
    const Addr x = prog.Alloc(kN * 8);
    const Addr y = prog.Alloc(kN * 8);
    machine::MachineConfig cfg = machine::SmpServerConfig(2);
    cfg.mem.memory_bytes = 1 << 24;
    machine::Machine machine(cfg, &prog.image());
    for (std::int64_t i = 0; i < kN; ++i) {
      machine.memory().WriteDouble(x + 8 * static_cast<Addr>(i), 1.0);
      machine.memory().WriteDouble(y + 8 * static_cast<Addr>(i), 2.0);
    }

    std::unique_ptr<CobraRuntime> cobra;
    if (with_cobra) {
      cobra = std::make_unique<CobraRuntime>(&machine, config);
      cobra->AttachAll(2);
    }

    rt::Team team(&machine, 2);
    auto Rep = [&] {
      team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
        const auto chunk = rt::StaticChunk(tid, 2, kN);
        regs.WriteGr(14, x + 8 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(15, y + 8 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
        regs.WriteFr(6, 0.5);
      });
    };
    for (int i = 0; i < 6; ++i) Rep();  // warm-up + COBRA learning time
    const Cycle start = machine.GlobalTime();
    for (int i = 0; i < reps; ++i) Rep();
    RunResult result;
    result.cycles = machine.GlobalTime() - start;
    if (cobra) stats_ = cobra->stats();

    result.verified = true;
    for (std::int64_t i = 0; i < kN; ++i) {
      double expected = 2.0;
      for (int rep = 0; rep < reps + 6; ++rep) {
        expected = std::fma(0.5, 1.0, expected);
      }
      if (machine.memory().ReadDouble(y + 8 * static_cast<Addr>(i)) !=
          expected) {
        result.verified = false;
      }
    }
    return result;
  }

  CobraRuntime::Stats stats_{};
};

TEST_F(RuntimeFixture, NoprefetchStrategySpeedsUpSharingBoundDaxpy) {
  CobraConfig config;
  config.strategy = OptKind::kNoprefetch;
  // DAXPY's coherence cost is store-side (write misses); the load-only DEAR
  // cannot see it, so the per-loop load filter must be relaxed here — the
  // same blind spot the paper's heuristic has on hardware.
  config.require_coherent_load_in_loop = false;
  const RunResult baseline = Run(false, config);
  const RunResult optimized = Run(true, config);
  ASSERT_TRUE(baseline.verified);
  ASSERT_TRUE(optimized.verified);  // patched binary still correct
  EXPECT_GT(stats_.deployments, 0u);
  EXPECT_GT(stats_.lfetches_rewritten, 0u);
  EXPECT_GT(stats_.last_coherent_ratio, 0.0);
  // COBRA must recover a good part of the prefetch-induced coherence cost.
  EXPECT_LT(static_cast<double>(optimized.cycles),
            static_cast<double>(baseline.cycles) * 0.97);
}

TEST_F(RuntimeFixture, ExclStrategyDeploysAndStaysBounded) {
  CobraConfig config;
  config.strategy = OptKind::kPrefetchExcl;
  config.require_coherent_load_in_loop = false;
  const RunResult baseline = Run(false, config);
  const RunResult optimized = Run(true, config);
  ASSERT_TRUE(optimized.verified);
  EXPECT_GT(stats_.deployments, 0u);
  EXPECT_GT(stats_.lfetches_rewritten, 0u);
  // Flipping .excl on DAXPY's single alternating chain also hints the
  // read-only x stream — the hazard the paper itself notes ("it could
  // still fetch unnecessary cache lines from other processors"), which is
  // why excl is the weaker of the two optimizations (Fig. 5). The damage
  // must stay bounded; the win cases are exercised by the stencil test
  // below and the NPB suite.
  EXPECT_LT(static_cast<double>(optimized.cycles),
            static_cast<double>(baseline.cycles) * 1.10);
}

TEST_F(RuntimeFixture, CoherentRatioGateBlocksQuietPrograms) {
  CobraConfig config;
  config.strategy = OptKind::kNoprefetch;
  config.coherent_ratio_threshold = 1.1;  // impossible: always below
  Run(true, config);
  EXPECT_GT(stats_.evaluations, 0u);
  EXPECT_EQ(stats_.deployments, 0u);
}

TEST_F(RuntimeFixture, TwoLevelFilterCanBeAblated) {
  CobraConfig config;
  config.strategy = OptKind::kNoprefetch;
  config.require_coherent_load_in_loop = false;
  config.require_coherent_ratio = false;
  Run(true, config);
  // Without the filters COBRA still deploys (more eagerly).
  EXPECT_GT(stats_.deployments, 0u);
}

TEST_F(RuntimeFixture, AdaptiveModeKeepsGoodDeployments) {
  CobraConfig config;
  config.strategy = OptKind::kNoprefetch;
  config.adaptive = true;
  config.require_coherent_load_in_loop = false;
  const RunResult baseline = Run(false, config);
  const RunResult optimized = Run(true, config, 60);
  ASSERT_TRUE(optimized.verified);
  EXPECT_GT(stats_.deployments, 0u);
  // The beneficial noprefetch deployment must survive (no rollback storm).
  EXPECT_LT(stats_.rollbacks, stats_.deployments);
  EXPECT_LT(static_cast<double>(optimized.cycles) /
                static_cast<double>(60) * 30.0,
            static_cast<double>(baseline.cycles) * 1.02);
}

// Halo-exchange stencil: each thread READS lines its neighbours WRITE, so
// coherent misses appear on loads and pass the full two-level DEAR filter.
TEST(RuntimeStencil, FullFilterPathDeploysOnTrueSharing) {
  kgen::Program prog;
  kgen::StreamLoopSpec spec;
  spec.op = kgen::StreamOp::kStencil3Sym;
  const kgen::LoopInfo stencil = EmitStreamLoop(prog, "smooth", spec);
  constexpr std::int64_t kN = 8192;
  const Addr in = prog.Alloc((kN + 2) * 8);
  const Addr out = prog.Alloc((kN + 2) * 8);
  machine::MachineConfig mcfg = machine::SmpServerConfig(4);
  mcfg.mem.memory_bytes = 1 << 24;
  machine::Machine machine(mcfg, &prog.image());
  for (std::int64_t i = 0; i < kN + 2; ++i) {
    machine.memory().WriteDouble(in + 8 * static_cast<Addr>(i), 1.0);
  }

  CobraConfig config;
  config.strategy = OptKind::kNoprefetch;  // full two-level filter active
  CobraRuntime cobra(&machine, config);
  cobra.AttachAll(4);

  rt::Team team(&machine, 4);
  Addr src = in, dst = out;
  for (int step = 0; step < 30; ++step) {
    team.Run(stencil.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, 4, kN);
      regs.WriteGr(14, src + 8 * static_cast<Addr>(chunk.begin));      // left
      regs.WriteGr(15, src + 8 * static_cast<Addr>(chunk.begin + 1));  // mid
      regs.WriteGr(16, src + 8 * static_cast<Addr>(chunk.begin + 2));  // right
      regs.WriteGr(17, dst + 8 * static_cast<Addr>(chunk.begin + 1));
      regs.WriteGr(18, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 0.25);
      regs.WriteFr(7, 0.5);
    });
    std::swap(src, dst);
  }

  const auto& stats = cobra.stats();
  EXPECT_GT(stats.last_coherent_ratio, 0.0);
  EXPECT_GT(stats.deployments, 0u);  // loads qualified via the DEAR filter
  // At least one coherent delinquent load was identified.
  EXPECT_FALSE(cobra.last_profile().coherent_loads.empty());
}

TEST_F(RuntimeFixture, MonitoringOverheadIsCharged) {
  CobraConfig config;
  config.monitor_overhead_cycles = 500;
  config.coherent_ratio_threshold = 1.1;  // no deployments: isolate overhead
  const RunResult cheap = Run(false, config);
  const RunResult monitored = Run(true, config);
  EXPECT_GT(monitored.cycles, cheap.cycles);
}

}  // namespace
}  // namespace cobra::core
