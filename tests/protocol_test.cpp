// Per-protocol conformance battery for the pluggable coherence layer:
//
//   1. CoherencePolicy tables (snoop transitions, legal states, traits)
//      checked exhaustively against hand-written oracles;
//   2. CacheStack state-transition tables: every reachable (cpu0 state,
//      cpu1 state, local op) cell on a two-stack snooping bus, per
//      protocol, against a hand-written MESI/MOESI/Dragon/MESIF oracle —
//      the cells with a valid cpu1 copy exercise every snooped-op row too;
//   3. traffic-class checks (Dragon never invalidates, MESIF forwards
//      clean lines cache-to-cache, MOESI shares dirty without a memory
//      writeback);
//   4. the optional store buffer: free store hits, drain-before-commit,
//      off-by-default equivalence, engine determinism;
//   5. fault-injection death tests proving the CoherenceChecker fires for
//      each protocol-specific invariant (protocol-state, protocol-op,
//      single-owner-of-dirty, exactly-one-forwarder, update-delivery,
//      no-stale-copy);
//   6. whole-machine runs per protocol (checker on) with protocol-
//      characteristic traffic assertions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "isa/instruction.h"
#include "kgen/program.h"
#include "machine/engine.h"
#include "machine/machine.h"
#include "mem/cache_stack.h"
#include "mem/coherence.h"
#include "mem/config.h"
#include "mem/protocol.h"
#include "mem/snoop_bus.h"
#include "rt/team.h"
#include "verify/coherence_checker.h"
#include "verify/fuzz.h"

namespace cobra::mem {
namespace {

// --- 1. CoherencePolicy tables ---------------------------------------------

constexpr Protocol kAllProtocols[] = {Protocol::kMesi, Protocol::kMoesi,
                                      Protocol::kDragon, Protocol::kMesif};
constexpr CohState kAllStates[] = {CohState::kI,  CohState::kS, CohState::kE,
                                   CohState::kM,  CohState::kO, CohState::kF,
                                   CohState::kSm, CohState::kSc};

TEST(Protocol, NamesParseRoundTrip) {
  for (const Protocol p : kAllProtocols) {
    Protocol parsed = Protocol::kMesi;
    ASSERT_TRUE(ParseProtocol(ProtocolName(p), &parsed)) << ProtocolName(p);
    EXPECT_EQ(parsed, p);
  }
  Protocol parsed = Protocol::kMesi;
  EXPECT_TRUE(ParseProtocol("MOESI", &parsed));  // case-insensitive
  EXPECT_EQ(parsed, Protocol::kMoesi);
  EXPECT_FALSE(ParseProtocol("mosi", &parsed));
  EXPECT_FALSE(ParseProtocol("", &parsed));
  EXPECT_FALSE(ParseProtocol("dragonfly", &parsed));
}

TEST(Protocol, EnvSelectsPresetProtocol) {
  ::setenv("COBRA_PROTOCOL", "dragon", 1);
  EXPECT_EQ(ItaniumSmpConfig().protocol, Protocol::kDragon);
  EXPECT_EQ(AltixNumaConfig().protocol, Protocol::kDragon);
  ::setenv("COBRA_PROTOCOL", "mesif", 1);
  EXPECT_EQ(ItaniumSmpConfig().protocol, Protocol::kMesif);
  ::setenv("COBRA_PROTOCOL", "bogus", 1);
  EXPECT_EQ(ItaniumSmpConfig().protocol, Protocol::kMesi);  // fallback
  ::unsetenv("COBRA_PROTOCOL");
  EXPECT_EQ(ItaniumSmpConfig().protocol, Protocol::kMesi);
}

TEST(Protocol, PolicyTraits) {
  const CoherencePolicy& mesi = CoherencePolicy::For(Protocol::kMesi);
  EXPECT_FALSE(mesi.update_based());
  EXPECT_EQ(mesi.store_shared_action(), StoreSharedAction::kReadInvalidate);
  EXPECT_FALSE(mesi.dirty_share_on_read());
  EXPECT_FALSE(mesi.clean_forwarding());
  EXPECT_EQ(mesi.read_grant_shared(), CohState::kS);
  EXPECT_TRUE(mesi.bias_upgrades());
  EXPECT_TRUE(mesi.excl_prefetch_rfo());

  const CoherencePolicy& moesi = CoherencePolicy::For(Protocol::kMoesi);
  EXPECT_FALSE(moesi.update_based());
  EXPECT_EQ(moesi.store_shared_action(), StoreSharedAction::kUpgrade);
  EXPECT_TRUE(moesi.dirty_share_on_read());
  EXPECT_FALSE(moesi.clean_forwarding());
  EXPECT_EQ(moesi.read_grant_shared(), CohState::kS);

  const CoherencePolicy& dragon = CoherencePolicy::For(Protocol::kDragon);
  EXPECT_TRUE(dragon.update_based());
  EXPECT_EQ(dragon.store_shared_action(), StoreSharedAction::kUpdate);
  EXPECT_TRUE(dragon.dirty_share_on_read());
  EXPECT_EQ(dragon.read_grant_shared(), CohState::kSc);
  EXPECT_FALSE(dragon.bias_upgrades());      // no RFO under Dragon
  EXPECT_FALSE(dragon.excl_prefetch_rfo());

  const CoherencePolicy& mesif = CoherencePolicy::For(Protocol::kMesif);
  EXPECT_FALSE(mesif.update_based());
  EXPECT_EQ(mesif.store_shared_action(), StoreSharedAction::kReadInvalidate);
  EXPECT_FALSE(mesif.dirty_share_on_read());
  EXPECT_TRUE(mesif.clean_forwarding());
  EXPECT_EQ(mesif.read_grant_shared(), CohState::kF);
}

TEST(Protocol, LegalStatesExhaustive) {
  // Hand-written oracle: which of the eight states each protocol may hold.
  const auto legal = [](Protocol p, CohState s) {
    switch (s) {
      case CohState::kI:
      case CohState::kE:
      case CohState::kM:
        return true;
      case CohState::kS:
        return p != Protocol::kDragon;  // Dragon splits S into Sc/Sm
      case CohState::kO:
        return p == Protocol::kMoesi;
      case CohState::kF:
        return p == Protocol::kMesif;
      case CohState::kSm:
      case CohState::kSc:
        return p == Protocol::kDragon;
    }
    return false;
  };
  for (const Protocol p : kAllProtocols) {
    const CoherencePolicy& policy = CoherencePolicy::For(p);
    for (const CohState s : kAllStates) {
      EXPECT_EQ(policy.LegalState(s), legal(p, s))
          << ProtocolName(p) << " state " << CohStateName(s);
    }
  }
}

TEST(Protocol, SnoopReadNextExhaustive) {
  // Hand-written oracle for the remote-read transition of every state.
  const auto oracle = [](Protocol p, CohState s) {
    if (!CohValid(s)) return CohState::kI;
    switch (p) {
      case Protocol::kMesi:
      case Protocol::kMesif:  // F demotes to S; the requester is the new F
        return CohState::kS;
      case Protocol::kMoesi:
        return CohDirty(s) ? CohState::kO : CohState::kS;
      case Protocol::kDragon:
        return CohDirty(s) ? CohState::kSm : CohState::kSc;
    }
    return CohState::kI;
  };
  for (const Protocol p : kAllProtocols) {
    const CoherencePolicy& policy = CoherencePolicy::For(p);
    for (const CohState s : kAllStates) {
      EXPECT_EQ(policy.SnoopReadNext(s), oracle(p, s))
          << ProtocolName(p) << " state " << CohStateName(s);
    }
  }
}

TEST(Protocol, SnoopUpdateNextExhaustive) {
  // A BusUpd leaves every surviving remote copy clean-shared.
  const CoherencePolicy& dragon = CoherencePolicy::For(Protocol::kDragon);
  for (const CohState s : kAllStates) {
    EXPECT_EQ(dragon.SnoopUpdateNext(s),
              CohValid(s) ? CohState::kSc : CohState::kI)
        << CohStateName(s);
  }
}

// --- 2. CacheStack transition tables ----------------------------------------

enum class LocalOp { kLoad, kStore };

struct TransitionCell {
  Mesi s0;       // cpu0's pre-state (the acting CPU)
  Mesi s1;       // cpu1's pre-state
  LocalOp op;    // cpu0's operation
  Mesi post0;    // expected cpu0 state
  Mesi post1;    // expected cpu1 state
};

class ProtocolPairFixture : public ::testing::Test {
 protected:
  void Build(Protocol protocol, int cpus = 2) {
    cfg_ = ItaniumSmpConfig();
    cfg_.memory_bytes = 1 << 22;
    cfg_.protocol = protocol;
    bus_ = std::make_unique<SnoopBus>(cfg_);
    std::vector<CacheStack*> raw;
    for (int i = 0; i < cpus; ++i) {
      stacks_.push_back(std::make_unique<CacheStack>(i, cfg_));
      stacks_.back()->AttachFabric(bus_.get());
      raw.push_back(stacks_.back().get());
    }
    bus_->AttachStacks(raw);
  }

  CacheStack& stack(int i) { return *stacks_[static_cast<std::size_t>(i)]; }

  // Installs `line` honestly (so inclusion, ready_at and the bus agree it
  // is cached), then forces the asked-for pre-states.
  void Seed(Addr line, Mesi s0, Mesi s1) {
    Cycle now = 0;
    if (s0 != Mesi::kI) stack(0).Load(line, 8, false, false, now);
    now += 10000;
    if (s1 != Mesi::kI) stack(1).Load(line, 8, false, false, now);
    if (s0 != Mesi::kI) stack(0).TestOnlyCorruptLine(line, s0);
    if (s1 != Mesi::kI) stack(1).TestOnlyCorruptLine(line, s1);
    ASSERT_EQ(stack(0).LineState(line), s0);
    ASSERT_EQ(stack(1).LineState(line), s1);
  }

  void RunTable(Protocol protocol, const std::vector<TransitionCell>& table) {
    // A fresh system per cell: no cross-cell cache or bus-timing coupling.
    for (const TransitionCell& cell : table) {
      stacks_.clear();
      Build(protocol);
      const Addr line = 0x10000;
      Seed(line, cell.s0, cell.s1);
      const Cycle now = 100000;  // all seeded fills are long since settled
      if (cell.op == LocalOp::kLoad) {
        stack(0).Load(line, 8, false, false, now);
      } else {
        stack(0).Store(line, 8, now);
      }
      EXPECT_EQ(stack(0).LineState(line), cell.post0)
          << ProtocolName(protocol) << " (" << MesiName(cell.s0) << ","
          << MesiName(cell.s1) << ") "
          << (cell.op == LocalOp::kLoad ? "load" : "store") << " -> cpu0";
      EXPECT_EQ(stack(1).LineState(line), cell.post1)
          << ProtocolName(protocol) << " (" << MesiName(cell.s0) << ","
          << MesiName(cell.s1) << ") "
          << (cell.op == LocalOp::kLoad ? "load" : "store") << " -> cpu1";
    }
  }

  MemConfig cfg_;
  std::unique_ptr<SnoopBus> bus_;
  std::vector<std::unique_ptr<CacheStack>> stacks_;
};

TEST_F(ProtocolPairFixture, MesiTransitionTable) {
  using S = Mesi;
  const std::vector<TransitionCell> table = {
      // Loads: cold miss takes E; any remote copy demotes to S everywhere.
      {S::kI, S::kI, LocalOp::kLoad, S::kE, S::kI},
      {S::kI, S::kS, LocalOp::kLoad, S::kS, S::kS},
      {S::kI, S::kE, LocalOp::kLoad, S::kS, S::kS},
      {S::kI, S::kM, LocalOp::kLoad, S::kS, S::kS},
      {S::kS, S::kI, LocalOp::kLoad, S::kS, S::kI},
      {S::kS, S::kS, LocalOp::kLoad, S::kS, S::kS},
      {S::kE, S::kI, LocalOp::kLoad, S::kE, S::kI},
      {S::kM, S::kI, LocalOp::kLoad, S::kM, S::kI},
      // Stores: every path ends with a sole Modified copy.
      {S::kI, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kS, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kE, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kM, LocalOp::kStore, S::kM, S::kI},
      {S::kS, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kS, S::kS, LocalOp::kStore, S::kM, S::kI},
      {S::kE, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kM, S::kI, LocalOp::kStore, S::kM, S::kI},
  };
  RunTable(Protocol::kMesi, table);
}

TEST_F(ProtocolPairFixture, MoesiTransitionTable) {
  using S = Mesi;
  const std::vector<TransitionCell> table = {
      // Loads: a dirty remote copy stays resident as Owned.
      {S::kI, S::kI, LocalOp::kLoad, S::kE, S::kI},
      {S::kI, S::kS, LocalOp::kLoad, S::kS, S::kS},
      {S::kI, S::kE, LocalOp::kLoad, S::kS, S::kS},
      {S::kI, S::kM, LocalOp::kLoad, S::kS, S::kO},
      {S::kI, S::kO, LocalOp::kLoad, S::kS, S::kO},
      {S::kS, S::kI, LocalOp::kLoad, S::kS, S::kI},
      {S::kS, S::kO, LocalOp::kLoad, S::kS, S::kO},
      {S::kO, S::kI, LocalOp::kLoad, S::kO, S::kI},
      {S::kO, S::kS, LocalOp::kLoad, S::kO, S::kS},
      {S::kE, S::kI, LocalOp::kLoad, S::kE, S::kI},
      {S::kM, S::kI, LocalOp::kLoad, S::kM, S::kI},
      // Stores: shared-class holders upgrade in place (including O).
      {S::kI, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kS, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kE, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kM, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kO, LocalOp::kStore, S::kM, S::kI},
      {S::kS, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kS, S::kS, LocalOp::kStore, S::kM, S::kI},
      {S::kS, S::kO, LocalOp::kStore, S::kM, S::kI},
      {S::kO, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kO, S::kS, LocalOp::kStore, S::kM, S::kI},
      {S::kE, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kM, S::kI, LocalOp::kStore, S::kM, S::kI},
  };
  RunTable(Protocol::kMoesi, table);
}

TEST_F(ProtocolPairFixture, MesifTransitionTable) {
  using S = Mesi;
  const std::vector<TransitionCell> table = {
      // Loads: the newest sharer always becomes the forwarder; the old F
      // (or E/M owner) demotes to plain S.
      {S::kI, S::kI, LocalOp::kLoad, S::kE, S::kI},
      {S::kI, S::kS, LocalOp::kLoad, S::kF, S::kS},
      {S::kI, S::kE, LocalOp::kLoad, S::kF, S::kS},
      {S::kI, S::kM, LocalOp::kLoad, S::kF, S::kS},
      {S::kI, S::kF, LocalOp::kLoad, S::kF, S::kS},
      {S::kS, S::kI, LocalOp::kLoad, S::kS, S::kI},
      {S::kS, S::kF, LocalOp::kLoad, S::kS, S::kF},
      {S::kF, S::kI, LocalOp::kLoad, S::kF, S::kI},
      {S::kF, S::kS, LocalOp::kLoad, S::kF, S::kS},
      {S::kE, S::kI, LocalOp::kLoad, S::kE, S::kI},
      {S::kM, S::kI, LocalOp::kLoad, S::kM, S::kI},
      // Stores: like MESI, every path invalidates the rest.
      {S::kI, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kS, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kF, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kM, LocalOp::kStore, S::kM, S::kI},
      {S::kS, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kS, S::kF, LocalOp::kStore, S::kM, S::kI},
      {S::kF, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kF, S::kS, LocalOp::kStore, S::kM, S::kI},
      {S::kE, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kM, S::kI, LocalOp::kStore, S::kM, S::kI},
  };
  RunTable(Protocol::kMesif, table);
}

TEST_F(ProtocolPairFixture, DragonTransitionTable) {
  using S = Mesi;
  const std::vector<TransitionCell> table = {
      // Loads: dirty remote copies hand out data and stay Sm; clean ones
      // become Sc. No invalidations anywhere.
      {S::kI, S::kI, LocalOp::kLoad, S::kE, S::kI},
      {S::kI, S::kSc, LocalOp::kLoad, S::kSc, S::kSc},
      {S::kI, S::kE, LocalOp::kLoad, S::kSc, S::kSc},
      {S::kI, S::kM, LocalOp::kLoad, S::kSc, S::kSm},
      {S::kI, S::kSm, LocalOp::kLoad, S::kSc, S::kSm},
      {S::kSc, S::kI, LocalOp::kLoad, S::kSc, S::kI},
      {S::kSc, S::kSc, LocalOp::kLoad, S::kSc, S::kSc},
      {S::kSc, S::kSm, LocalOp::kLoad, S::kSc, S::kSm},
      {S::kSm, S::kI, LocalOp::kLoad, S::kSm, S::kI},
      {S::kSm, S::kSc, LocalOp::kLoad, S::kSm, S::kSc},
      {S::kE, S::kI, LocalOp::kLoad, S::kE, S::kI},
      {S::kM, S::kI, LocalOp::kLoad, S::kM, S::kI},
      // Stores: remote copies are *updated in place*, never invalidated;
      // the writer holds Sm while sharers remain, M once it is alone.
      {S::kI, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kI, S::kSc, LocalOp::kStore, S::kSm, S::kSc},
      {S::kI, S::kE, LocalOp::kStore, S::kSm, S::kSc},
      {S::kI, S::kM, LocalOp::kStore, S::kSm, S::kSc},
      {S::kI, S::kSm, LocalOp::kStore, S::kSm, S::kSc},
      {S::kSc, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kSc, S::kSc, LocalOp::kStore, S::kSm, S::kSc},
      {S::kSc, S::kSm, LocalOp::kStore, S::kSm, S::kSc},
      {S::kSm, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kSm, S::kSc, LocalOp::kStore, S::kSm, S::kSc},
      {S::kE, S::kI, LocalOp::kStore, S::kM, S::kI},
      {S::kM, S::kI, LocalOp::kStore, S::kM, S::kI},
  };
  RunTable(Protocol::kDragon, table);
}

// --- 3. Traffic classes -----------------------------------------------------

TEST_F(ProtocolPairFixture, DragonStoreToSharedBroadcastsUpdate) {
  Build(Protocol::kDragon);
  stack(0).Load(0x1000, 8, false, false, 0);
  stack(1).Load(0x1000, 8, false, false, 10000);
  ASSERT_EQ(stack(0).LineState(0x1000), Mesi::kSc);
  stack(0).Store(0x1000, 8, 20000);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kSm);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kSc);  // still valid!
  EXPECT_EQ(bus_->TotalCounts().bus_updates, 1u);
  EXPECT_EQ(bus_->TotalCounts().bus_upgrades, 0u);
  EXPECT_EQ(stack(1).stats().snoop_invalidations, 0u);
  EXPECT_EQ(stack(1).stats().snoop_updates, 1u);
  EXPECT_EQ(stack(0).stats().store_updates, 1u);
}

TEST_F(ProtocolPairFixture, MesifCleanForwardSuppliesCacheToCache) {
  Build(Protocol::kMesif, 3);
  stack(0).Load(0x1000, 8, false, false, 0);  // E
  const auto r1 = stack(1).Load(0x1000, 8, false, false, 10000);
  // The sole E copy forwarded: cache-to-cache at forward latency, not
  // memory latency.
  EXPECT_EQ(r1.latency, cfg_.forward_latency);
  EXPECT_EQ(bus_->TotalCounts().c2c_transfers, 1u);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kF);
  // And the F copy keeps forwarding to the next reader.
  const auto r2 = stack(2).Load(0x1000, 8, false, false, 20000);
  EXPECT_EQ(r2.latency, cfg_.forward_latency);
  EXPECT_EQ(bus_->TotalCounts().c2c_transfers, 2u);
  EXPECT_EQ(stack(2).LineState(0x1000), Mesi::kF);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kS);
}

TEST_F(ProtocolPairFixture, MesiCleanSharingGoesToMemoryInstead) {
  Build(Protocol::kMesi, 3);
  stack(0).Load(0x1000, 8, false, false, 0);
  const auto r1 = stack(1).Load(0x1000, 8, false, false, 10000);
  EXPECT_EQ(r1.latency, cfg_.memory_latency);
  EXPECT_EQ(bus_->TotalCounts().c2c_transfers, 0u);
}

TEST_F(ProtocolPairFixture, MoesiDirtyShareKeepsOwnerResponsible) {
  Build(Protocol::kMoesi);
  stack(0).Store(0x1000, 8, 0);
  ASSERT_EQ(stack(0).LineState(0x1000), Mesi::kM);
  stack(1).Load(0x1000, 8, false, false, 10000);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kO);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kS);
  EXPECT_EQ(bus_->TotalCounts().bus_rd_hitm, 1u);
  EXPECT_EQ(bus_->TotalCounts().c2c_transfers, 1u);
  // MESI would hold the bus for an implicit memory writeback after the
  // HITM supply; MOESI leaves the owner responsible, so the transaction
  // occupies one data slot, not two.
  EXPECT_EQ(bus_->free_at(), 10000 + cfg_.bus_data_occupancy);
}

// --- 4. The optional store buffer -------------------------------------------

TEST_F(ProtocolPairFixture, StoreBufferOffByDefault) {
  Build(Protocol::kMesi);
  EXPECT_EQ(cfg_.store_buffer_entries, 0);
  stack(0).Store(0x1000, 8, 0);
  const auto r = stack(0).Store(0x1000, 8, 100000);  // M hit
  EXPECT_EQ(r.latency, cfg_.store_hit_latency);
  EXPECT_EQ(stack(0).stats().buffered_stores, 0u);
}

class StoreBufferFixture : public ProtocolPairFixture {
 protected:
  void BuildBuffered(int entries) {
    cfg_ = ItaniumSmpConfig();
    cfg_.memory_bytes = 1 << 22;
    cfg_.store_buffer_entries = entries;
    bus_ = std::make_unique<SnoopBus>(cfg_);
    std::vector<CacheStack*> raw;
    for (int i = 0; i < 2; ++i) {
      stacks_.push_back(std::make_unique<CacheStack>(i, cfg_));
      stacks_.back()->AttachFabric(bus_.get());
      raw.push_back(stacks_.back().get());
    }
    bus_->AttachStacks(raw);
  }
};

TEST_F(StoreBufferFixture, BufferedHitsAreFreeUntilFull) {
  BuildBuffered(4);
  stack(0).Store(0x1000, 8, 0);  // miss: installs M, buffer untouched
  for (int i = 0; i < 4; ++i) {
    const auto r = stack(0).Store(0x1000, 8, 100000 + i);
    EXPECT_EQ(r.latency, 0u) << "buffered store " << i;
  }
  EXPECT_EQ(stack(0).stats().buffered_stores, 4u);
  // Buffer full: the fifth hit pays the pipeline cost again.
  const auto r = stack(0).Store(0x1000, 8, 200000);
  EXPECT_EQ(r.latency, cfg_.store_hit_latency);
  EXPECT_EQ(stack(0).stats().buffered_stores, 4u);
}

TEST_F(StoreBufferFixture, DrainChargedBeforeNextCoherenceTransaction) {
  BuildBuffered(4);
  stack(0).Store(0x1000, 8, 0);
  for (int i = 0; i < 3; ++i) stack(0).Store(0x1000, 8, 100000 + i);
  ASSERT_EQ(stack(0).stats().buffered_stores, 3u);
  // The next fabric transaction (a cold load far away) drains the three
  // pending stores first: their cost lands on this operation's latency.
  const auto undrained = cfg_.memory_latency;
  const auto r = stack(0).Load(0x80000, 8, false, false, 200000);
  EXPECT_EQ(r.latency, undrained + 3 * cfg_.store_hit_latency);
  // Drained: the next buffered window starts empty.
  const auto r2 = stack(0).Store(0x1000, 8, 300000);
  EXPECT_EQ(r2.latency, 0u);
  EXPECT_EQ(stack(0).stats().buffered_stores, 4u);
}

TEST(StoreBuffer, BufferedRunStaysEngineDeterministic) {
  // Drain-before-commit keeps every fabric transaction's timing a function
  // of simulated state alone, so serial and parallel engines must agree
  // bit-for-bit even with the buffer enabled.
  verify::FuzzCase c = verify::SmpFuzzCase(424242);
  c.machine.mem.store_buffer_entries = 8;
  machine::EngineConfig serial;
  machine::EngineConfig parallel;
  parallel.kind = machine::EngineKind::kParallel;
  parallel.host_threads = 4;
  EXPECT_EQ(verify::RunFuzzCase(c, serial), verify::RunFuzzCase(c, parallel));
}

TEST(StoreBuffer, DisabledBufferMatchesDefaultConfigExactly) {
  // store_buffer_entries = 0 *is* the paper configuration: forcing it
  // explicitly must not perturb a single fingerprinted value.
  const verify::FuzzCase base = verify::SmpFuzzCase(97);
  verify::FuzzCase off = base;
  off.machine.mem.store_buffer_entries = 0;
  const machine::EngineConfig engine;
  EXPECT_EQ(verify::RunFuzzCase(base, engine),
            verify::RunFuzzCase(off, engine));
}

}  // namespace
}  // namespace cobra::mem

// --- 5 & 6. Whole-machine conformance + checker fault injection -------------

namespace cobra::verify {
namespace {

using mem::Mesi;

struct RanWorkload {
  std::unique_ptr<kgen::Program> prog;
  std::unique_ptr<machine::Machine> m;
  mem::Addr shared_line = 0;
};

// Every thread reads word 0 of one shared line and stores to its own word
// of the *same* line: the load leaves the line shared-class, so the store
// that follows exercises the protocol's store-to-shared transaction
// (read-invalidate, in-place upgrade, or update broadcast) plus dirty
// supplies on the other threads' next reads. Word 0 is never written, so
// the golden memory oracle stays exact.
RanWorkload RunContendedWorkload(machine::MachineConfig cfg, int threads) {
  using namespace cobra::isa;
  RanWorkload w;
  w.prog = std::make_unique<kgen::Program>();
  w.shared_line = w.prog->Alloc(256);

  Assembler a(&w.prog->image());
  const auto loop = a.NewLabel();
  a.Emit(MovImm(30, 31));  // 32 iterations
  a.Emit(MovToAr(AppReg::kLC, 30));
  a.FlushBundle();
  a.Bind(loop);
  a.Emit(Ld(8, 29, 8));    // all threads read the same word
  a.Emit(St(8, 9, 10));    // each thread stores its own word of that line
  a.Emit(AddImm(10, 10, 1));
  a.EmitBranch(BrCloop(0), loop);
  a.Emit(Break());
  const Addr entry = a.Finish();

  cfg.verify_coherence = true;
  w.m = std::make_unique<machine::Machine>(cfg, &w.prog->image());
  rt::Team team(w.m.get(), threads, machine::EngineConfig{});
  const mem::Addr shared = w.shared_line;
  team.Run(entry, [shared](int tid, cpu::RegisterFile& regs) {
    regs.WriteGr(8, shared);
    regs.WriteGr(9, shared + 8 + static_cast<std::uint64_t>(tid) * 8);
    regs.WriteGr(10, 0x100 + static_cast<std::uint64_t>(tid));
  });
  return w;
}

// Read-only variant: threads share reads of one line and dirty private
// lines. Under the invalidation protocols this leaves the shared line
// resident in *every* stack (S/F mix), which the corruption-based death
// tests below need — the contended workload ends with all but the last
// writer invalidated.
RanWorkload RunSharedReadWorkload(machine::MachineConfig cfg, int threads) {
  using namespace cobra::isa;
  RanWorkload w;
  w.prog = std::make_unique<kgen::Program>();
  w.shared_line = w.prog->Alloc(256);
  const mem::Addr own_base =
      w.prog->Alloc(static_cast<std::uint64_t>(threads) * 128 + 128);

  Assembler a(&w.prog->image());
  const auto loop = a.NewLabel();
  a.Emit(MovImm(30, 31));  // 32 iterations
  a.Emit(MovToAr(AppReg::kLC, 30));
  a.FlushBundle();
  a.Bind(loop);
  a.Emit(Ld(8, 29, 8));
  a.Emit(St(8, 9, 10));
  a.Emit(AddImm(10, 10, 1));
  a.EmitBranch(BrCloop(0), loop);
  a.Emit(Break());
  const Addr entry = a.Finish();

  cfg.verify_coherence = true;
  w.m = std::make_unique<machine::Machine>(cfg, &w.prog->image());
  rt::Team team(w.m.get(), threads, machine::EngineConfig{});
  const mem::Addr shared = w.shared_line;
  team.Run(entry, [shared, own_base](int tid, cpu::RegisterFile& regs) {
    regs.WriteGr(8, shared);
    regs.WriteGr(9, own_base + static_cast<std::uint64_t>(tid) * 128);
    regs.WriteGr(10, 0x100 + static_cast<std::uint64_t>(tid));
  });
  return w;
}

machine::MachineConfig SmpWith(mem::Protocol p) {
  machine::MachineConfig cfg = machine::SmpServerConfig(4);
  cfg.mem.protocol = p;
  return cfg;
}

machine::MachineConfig NumaWith(mem::Protocol p) {
  machine::MachineConfig cfg = machine::AltixConfig(4);
  cfg.mem.protocol = p;
  return cfg;
}

TEST(ProtocolConformance, MoesiSharesDirtyWithoutInvalidation) {
  for (const bool numa : {false, true}) {
    RanWorkload w = RunContendedWorkload(
        numa ? NumaWith(mem::Protocol::kMoesi) : SmpWith(mem::Protocol::kMoesi),
        4);
    ASSERT_NE(w.m->checker(), nullptr);
    w.m->checker()->CheckAll();  // full per-protocol invariant sweep
    const mem::BusEventCounts& bus = w.m->fabric().TotalCounts();
    EXPECT_GT(bus.bus_upgrades, 0u) << "numa=" << numa;  // in-place upgrades
    EXPECT_GT(bus.c2c_transfers, 0u) << "numa=" << numa;
    EXPECT_EQ(bus.bus_updates, 0u) << "numa=" << numa;
  }
}

TEST(ProtocolConformance, DragonNeverInvalidates) {
  for (const bool numa : {false, true}) {
    RanWorkload w = RunContendedWorkload(
        numa ? NumaWith(mem::Protocol::kDragon)
             : SmpWith(mem::Protocol::kDragon),
        4);
    ASSERT_NE(w.m->checker(), nullptr);
    w.m->checker()->CheckAll();
    const mem::BusEventCounts& bus = w.m->fabric().TotalCounts();
    EXPECT_GT(bus.bus_updates, 0u) << "numa=" << numa;
    EXPECT_EQ(bus.bus_upgrades, 0u) << "numa=" << numa;
    EXPECT_EQ(bus.bus_rd_inval_all_hitm, 0u) << "numa=" << numa;
    std::uint64_t invalidations = 0;
    for (int cpu = 0; cpu < w.m->num_cpus(); ++cpu) {
      invalidations += w.m->stack(cpu).stats().snoop_invalidations;
    }
    EXPECT_EQ(invalidations, 0u) << "numa=" << numa;
  }
}

TEST(ProtocolConformance, MesifForwardsCleanLines) {
  for (const bool numa : {false, true}) {
    RanWorkload w = RunContendedWorkload(
        numa ? NumaWith(mem::Protocol::kMesif) : SmpWith(mem::Protocol::kMesif),
        4);
    ASSERT_NE(w.m->checker(), nullptr);
    w.m->checker()->CheckAll();
    EXPECT_GT(w.m->fabric().TotalCounts().c2c_transfers, 0u)
        << "numa=" << numa;
  }
}

// --- Fault injection: each protocol-specific invariant must fire -----------

using ProtocolCheckerDeath = ::testing::Test;

TEST(ProtocolCheckerDeath, ForeignStateViolatesProtocolState) {
  RanWorkload w = RunSharedReadWorkload(SmpWith(mem::Protocol::kMesi), 4);
  // Owned does not exist under MESI.
  w.m->stack(1).TestOnlyCorruptLine(w.shared_line, Mesi::kO);
  EXPECT_DEATH(w.m->checker()->CheckLineSettled(w.shared_line),
               "protocol-state");
}

TEST(ProtocolCheckerDeath, TwoOwnedCopiesViolateSingleOwnerOfDirty) {
  RanWorkload w = RunSharedReadWorkload(SmpWith(mem::Protocol::kMoesi), 4);
  ASSERT_NE(w.m->stack(0).LineState(w.shared_line), Mesi::kI);
  ASSERT_NE(w.m->stack(1).LineState(w.shared_line), Mesi::kI);
  w.m->stack(0).TestOnlyCorruptLine(w.shared_line, Mesi::kO);
  w.m->stack(1).TestOnlyCorruptLine(w.shared_line, Mesi::kO);
  EXPECT_DEATH(w.m->checker()->CheckLineSettled(w.shared_line),
               "single-owner-of-dirty");
}

TEST(ProtocolCheckerDeath, TwoForwardersViolateExactlyOneForwarder) {
  RanWorkload w = RunSharedReadWorkload(SmpWith(mem::Protocol::kMesif), 4);
  ASSERT_NE(w.m->stack(0).LineState(w.shared_line), Mesi::kI);
  ASSERT_NE(w.m->stack(1).LineState(w.shared_line), Mesi::kI);
  w.m->stack(0).TestOnlyCorruptLine(w.shared_line, Mesi::kF);
  w.m->stack(1).TestOnlyCorruptLine(w.shared_line, Mesi::kF);
  EXPECT_DEATH(w.m->checker()->CheckLineSettled(w.shared_line),
               "exactly-one-forwarder");
}

TEST(ProtocolCheckerDeath, TwoSmCopiesViolateUpdateDelivery) {
  RanWorkload w = RunContendedWorkload(SmpWith(mem::Protocol::kDragon), 4);
  ASSERT_NE(w.m->stack(0).LineState(w.shared_line), Mesi::kI);
  ASSERT_NE(w.m->stack(1).LineState(w.shared_line), Mesi::kI);
  w.m->stack(0).TestOnlyCorruptLine(w.shared_line, Mesi::kSm);
  w.m->stack(1).TestOnlyCorruptLine(w.shared_line, Mesi::kSm);
  EXPECT_DEATH(w.m->checker()->CheckLineSettled(w.shared_line),
               "update-delivery");
}

TEST(ProtocolCheckerDeath, ExclusiveBesideCopiesViolatesNoStaleCopy) {
  RanWorkload w = RunContendedWorkload(SmpWith(mem::Protocol::kDragon), 4);
  ASSERT_NE(w.m->stack(0).LineState(w.shared_line), Mesi::kI);
  ASSERT_NE(w.m->stack(1).LineState(w.shared_line), Mesi::kI);
  // A Modified copy while others still hold the line: those copies missed
  // an update broadcast and are stale.
  w.m->stack(0).TestOnlyCorruptLine(w.shared_line, Mesi::kM);
  w.m->stack(1).TestOnlyCorruptLine(w.shared_line, Mesi::kSc);
  EXPECT_DEATH(w.m->checker()->CheckLineSettled(w.shared_line),
               "no-stale-copy");
}

TEST(ProtocolCheckerDeath, UpdateUnderInvalidationProtocolViolatesProtocolOp) {
  RanWorkload w = RunContendedWorkload(SmpWith(mem::Protocol::kMesi), 4);
  EXPECT_DEATH(
      w.m->checker()->Request(0, mem::BusOp::kUpdate, w.shared_line, 0),
      "protocol-op");
}

TEST(ProtocolCheckerDeath, RfoUnderDragonViolatesProtocolOp) {
  RanWorkload w = RunContendedWorkload(SmpWith(mem::Protocol::kDragon), 4);
  EXPECT_DEATH(
      w.m->checker()->Request(0, mem::BusOp::kReadExcl, w.shared_line, 0),
      "protocol-op");
}

}  // namespace
}  // namespace cobra::verify
