// Unit tests for the MIA-64 ISA layer: encoding round-trips, image
// construction, assembler label resolution, binary patching, and the
// disassembler's Itanium syntax.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/image.h"
#include "isa/instruction.h"

namespace cobra::isa {
namespace {

// --- Encoding round-trips ---------------------------------------------------

class EncodeRoundTrip : public ::testing::TestWithParam<Instruction> {};

TEST_P(EncodeRoundTrip, DecodeRecoversInstruction) {
  const Instruction inst = GetParam();
  const EncodedSlot slot = Encode(inst);
  EXPECT_EQ(Decode(slot), inst) << Disassemble(inst);
}

std::vector<Instruction> AllRepresentativeInstructions() {
  std::vector<Instruction> insts = {
      Nop(Unit::kM),
      Nop(Unit::kI),
      Break(),
      AddReg(3, 4, 5),
      SubReg(127, 126, 125),
      AddImm(8, 16, -1),
      AddImm(41, 43, 16),
      ShlAdd(9, 8, 2, 15),
      AndReg(1, 2, 3),
      OrReg(4, 5, 6),
      XorReg(26, 26, 8),
      AndImm(9, 26, 0xfffffffffffffLL),
      OrImm(9, 9, 0x3ff0000000000000LL),
      ShlImm(8, 26, 13),
      ShrImm(8, 26, 7),
      SarImm(8, 26, 63),
      MovImm(7, -123456789012345LL),
      MovReg(2, 14),
      Sxt4(3, 4),
      Zxt4(5, 6),
      Cmp(CmpRel::kLt, 15, 14, 28, 16),
      Cmp(CmpRel::kGeu, 8, 9, 1, 2),
      CmpImm(CmpRel::kLe, 8, 0, 16, 0),
      MovToAr(AppReg::kLC, 8),
      MovToAr(AppReg::kEC, 9),
      MovFromAr(10, AppReg::kLC),
      MovToPrRot(1),
      ClrRrb(),
      Ld(8, 28, 27),
      Ld(4, 10, 9, LoadHint::kBias),
      Ld(2, 10, 9, LoadHint::kAcq),
      LdPostInc(8, 13, 11, 8),
      LdPostInc(4, 8, 26, 4),
      St(4, 9, 10),
      StPostInc(4, 27, 8, 4),
      St(8, 16, 27),
      Ldf(38, 33),
      LdfPostInc(32, 2, 8),
      Stf(40, 46),
      StfPostInc(29, 44, 8),
      Lfetch(43),
      Lfetch(43, LfetchHint{Temporal::kNt1, true, false}),
      Lfetch(43, LfetchHint{Temporal::kNta, false, true}),
      LfetchPostInc(28, 8, LfetchHint{Temporal::kNt2, true, true}),
      Fma(44, 6, 37, 43),
      Fms(13, 13, 6, 7),
      Fnma(10, 11, 12, 13),
      Fmov(44, 34),
      Fneg(9, 10),
      Fabs(11, 12),
      Frcpa(13, 14),
      Fsqrt(15, 15),
      Fmin(20, 21, 22),
      Fmax(8, 8, 10),
      Fcmp(FCmpRel::kLe, 8, 9, 15, 1),
      Setf(13, 9),
      Getf(9, 13),
      FcvtFx(10, 11),
      FcvtXf(12, 13),
      BrCond(8, -5),
      BrCloop(-3),
      BrCtop(-4),
      BrWtop(15, -2),
      Brl(0x40000130),
      Pred(16, LdfPostInc(32, 2, 8)),
      Pred(23, Stf(40, 46)),
      Pred(21, Fma(44, 6, 37, 43)),
  };
  return insts;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::ValuesIn(AllRepresentativeInstructions()));

// The representative set must stay in lockstep with the opcode enum: a new
// opcode without a round-trip sample here silently escapes every encode,
// decode, and disassembly test.
TEST(EncodeRoundTrip, RepresentativeSetCoversEveryOpcode) {
  std::array<bool, static_cast<std::size_t>(Opcode::kOpcodeCount)> seen{};
  for (const Instruction& inst : AllRepresentativeInstructions()) {
    seen[static_cast<std::size_t>(inst.op)] = true;
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "opcode enum value " << i
                         << " has no representative instruction";
  }
}

// Full-image round trip over every opcode: assemble the whole set into a
// BinaryImage, then decode each raw slot back and compare the disassembly
// text — the end-to-end path COBRA's patcher and tracer rely on.
TEST(BinaryImage, EveryOpcodeRoundTripsThroughAnImageToIdenticalText) {
  const std::vector<Instruction> insts = AllRepresentativeInstructions();
  BinaryImage image;
  for (std::size_t i = 0; i < insts.size(); i += 3) {
    auto at = [&insts](std::size_t j) {
      return j < insts.size() ? insts[j] : Nop();
    };
    image.AppendBundle(at(i), at(i + 1), at(i + 2));
  }
  std::size_t idx = 0;
  for (Addr bundle = image.code_base(); bundle < image.code_end();
       bundle += kBundleBytes) {
    for (unsigned slot = 0; slot < 3 && idx < insts.size(); ++slot, ++idx) {
      const Addr pc = MakePc(bundle, slot);
      EXPECT_EQ(image.Fetch(pc), insts[idx]) << Disassemble(insts[idx]);
      const std::string text = Disassemble(Decode(image.Raw(pc)));
      EXPECT_EQ(text, Disassemble(insts[idx]));
    }
  }
  EXPECT_EQ(idx, insts.size());
}

TEST(Encoding, ExclBitIsWhereThePatcherExpects) {
  LfetchHint plain;
  LfetchHint excl;
  excl.excl = true;
  const EncodedSlot a = Encode(Lfetch(43, plain));
  const EncodedSlot b = Encode(Lfetch(43, excl));
  EXPECT_EQ(a.head ^ b.head, enc::kExclBit);
  EXPECT_TRUE(IsLfetchHead(a.head));
  EXPECT_FALSE(LfetchExclOf(a.head));
  EXPECT_TRUE(LfetchExclOf(b.head));
}

TEST(Encoding, RejectsReservedBits) {
  EncodedSlot slot = Encode(Nop());
  slot.head |= 1ULL << 63;
  EXPECT_DEATH(Decode(slot), "reserved");
}

TEST(Encoding, RejectsInvalidOpcode) {
  EncodedSlot slot;
  slot.head = 0x7f;  // opcode field beyond kOpcodeCount
  EXPECT_DEATH(Decode(slot), "invalid opcode");
}

// --- Address helpers ----------------------------------------------------------

TEST(AddrHelpers, BundleAndSlotComposition) {
  const Addr bundle = 0x40000120;
  for (unsigned slot = 0; slot < 3; ++slot) {
    const Addr pc = MakePc(bundle, slot);
    EXPECT_EQ(BundleAddr(pc), bundle);
    EXPECT_EQ(SlotOf(pc), slot);
  }
}

// --- BinaryImage -----------------------------------------------------------------

TEST(BinaryImage, AppendAndFetch) {
  BinaryImage image(0x1000);
  const Addr b0 = image.AppendBundle(AddReg(3, 4, 5), Nop(), Break());
  EXPECT_EQ(b0, 0x1000u);
  EXPECT_EQ(image.NumBundles(), 1u);
  EXPECT_EQ(image.code_end(), 0x1010u);
  EXPECT_EQ(image.Fetch(MakePc(b0, 0)), AddReg(3, 4, 5));
  EXPECT_EQ(image.Fetch(MakePc(b0, 2)), Break());
}

TEST(BinaryImage, PatchReplacesSlotAndCounts) {
  BinaryImage image;
  const Addr b0 = image.AppendBundle(Nop(), Lfetch(43), Nop());
  EXPECT_EQ(image.patch_count(), 0u);
  image.Patch(MakePc(b0, 0), AddImm(8, 16, -1));
  EXPECT_EQ(image.Fetch(MakePc(b0, 0)), AddImm(8, 16, -1));
  EXPECT_EQ(image.patch_count(), 1u);
}

TEST(BinaryImage, SetLfetchExclTogglesOnlyTheHintBit) {
  BinaryImage image;
  const Addr b0 = image.AppendBundle(Nop(), Lfetch(43), Nop());
  const Addr pc = MakePc(b0, 1);
  const EncodedSlot before = image.Raw(pc);
  image.SetLfetchExcl(pc, true);
  EXPECT_EQ(image.Raw(pc).head, before.head | enc::kExclBit);
  EXPECT_TRUE(image.Fetch(pc).lf_hint.excl);
  image.SetLfetchExcl(pc, false);
  EXPECT_EQ(image.Raw(pc).head, before.head);
}

TEST(BinaryImage, SetLfetchExclRejectsNonLfetch) {
  BinaryImage image;
  const Addr b0 = image.AppendBundle(Nop(), Nop(), Nop());
  EXPECT_DEATH(image.SetLfetchExcl(MakePc(b0, 0), true), "lfetch");
}

TEST(BinaryImage, NopOutPlainLfetchBecomesNop) {
  BinaryImage image;
  const Addr b0 = image.AppendBundle(Nop(), Pred(16, Lfetch(43)), Nop());
  image.NopOutLfetch(MakePc(b0, 1));
  const Instruction inst = image.Fetch(MakePc(b0, 1));
  EXPECT_EQ(inst.op, Opcode::kNop);
  EXPECT_EQ(inst.qp, 16);  // predication preserved
}

TEST(BinaryImage, NopOutPostIncLfetchPreservesAddressStream) {
  BinaryImage image;
  const Addr b0 =
      image.AppendBundle(Nop(), Pred(16, LfetchPostInc(28, 8)), Nop());
  image.NopOutLfetch(MakePc(b0, 1));
  const Instruction inst = image.Fetch(MakePc(b0, 1));
  EXPECT_EQ(inst.op, Opcode::kAddImm);
  EXPECT_EQ(inst.r1, 28);
  EXPECT_EQ(inst.r2, 28);
  EXPECT_EQ(inst.imm, 8);
  EXPECT_EQ(inst.qp, 16);
}

TEST(BinaryImage, CodeCacheBoundary) {
  BinaryImage image;
  image.AppendBundle(Nop(), Nop(), Nop());
  const Addr boundary = image.BeginCodeCache();
  EXPECT_EQ(boundary, image.code_base() + kBundleBytes);
  const Addr trace = image.AppendBundle(Nop(), Nop(), Break());
  EXPECT_TRUE(image.InCodeCache(trace));
  EXPECT_FALSE(image.InCodeCache(image.code_base()));
}

TEST(BinaryImage, FetchOutOfRangeAborts) {
  BinaryImage image;
  image.AppendBundle(Nop(), Nop(), Nop());
  EXPECT_DEATH(image.Fetch(image.code_end()), "outside image");
}

TEST(BinaryImage, ExecPlanTracksPatches) {
  BinaryImage image;
  const Addr b0 = image.AppendBundle(Nop(), Lfetch(43), Nop());
  const std::uint64_t gen0 = image.plan_generation();
  EXPECT_GT(gen0, 0u);  // AppendBundle populated the plans

  // The lfetch slot's plan carries the routing classification the core's
  // fabric probe tests instead of re-classifying the decoded instruction.
  const ExecPlan& lf = image.PlanAt(MakePc(b0, 1));
  EXPECT_EQ(lf.handler, static_cast<std::uint16_t>(Opcode::kLfetch));
  EXPECT_TRUE(lf.cls & kPlanMem);
  EXPECT_TRUE(lf.cls & kPlanLfetch);
  EXPECT_FALSE(lf.cls & kPlanExcl);

  // Patching a slot rebuilds its plan in the same call and bumps the
  // generation, so no consumer can observe a plan that predates the bits.
  const Addr pc = MakePc(b0, 0);
  image.Patch(pc, AddImm(8, 16, -1));
  EXPECT_GT(image.plan_generation(), gen0);
  const ExecPlan& plan = image.PlanAt(pc);
  EXPECT_EQ(plan.handler, static_cast<std::uint16_t>(Opcode::kAddImm));
  EXPECT_EQ(plan.imm, -1);
  EXPECT_EQ(plan.r1, 8);
  EXPECT_EQ(plan.r2, 16);
  EXPECT_EQ(plan.cls, 0);

  // The hint-bit patcher funnels through PatchRaw too.
  const std::uint64_t gen1 = image.plan_generation();
  image.SetLfetchExcl(MakePc(b0, 1), true);
  EXPECT_GT(image.plan_generation(), gen1);
  EXPECT_TRUE(image.PlanAt(MakePc(b0, 1)).cls & kPlanExcl);
}

TEST(BinaryImage, CorruptSlotMarksPlanStaleAndAborts) {
  BinaryImage image;
  const Addr b0 = image.AppendBundle(Nop(), Nop(), Nop());
  const Addr pc = MakePc(b0, 1);
  const std::uint64_t gen0 = image.plan_generation();

  EncodedSlot garbage = image.Raw(pc);
  garbage.head ^= 0xffff'ffffULL;
  image.TestOnlyCorruptSlot(pc, garbage);
  EXPECT_GT(image.plan_generation(), gen0);
  EXPECT_DEATH(image.Fetch(pc), "no longer match");
  EXPECT_DEATH(image.PlanAt(pc), "no longer match");
  // Untouched slots in the same image keep working.
  EXPECT_EQ(image.Fetch(MakePc(b0, 0)), Nop());

  // A valid re-patch heals the slot: decode, plan and staleness all agree.
  image.Patch(pc, AddImm(8, 16, 4));
  EXPECT_EQ(image.Fetch(pc), AddImm(8, 16, 4));
  EXPECT_EQ(image.PlanAt(pc).handler,
            static_cast<std::uint16_t>(Opcode::kAddImm));
}

// --- Assembler -----------------------------------------------------------------

TEST(Assembler, PacksThreeSlotsPerBundle) {
  BinaryImage image;
  Assembler a(&image);
  a.Emit(AddReg(3, 4, 5));
  a.Emit(AddReg(6, 7, 8));
  a.Emit(AddReg(9, 10, 11));
  a.Emit(AddReg(12, 13, 14));
  a.Finish();
  EXPECT_EQ(image.NumBundles(), 2u);  // second bundle padded with nops
  EXPECT_EQ(image.Fetch(MakePc(image.code_base() + 16, 1)).op, Opcode::kNop);
}

TEST(Assembler, BackwardBranchDisplacement) {
  BinaryImage image;
  Assembler a(&image);
  const auto loop = a.NewLabel();
  a.Bind(loop);
  a.Emit(AddImm(8, 8, 1));
  const Addr br_pc = a.EmitBranch(BrCloop(0), loop);
  a.Finish();
  EXPECT_EQ(SlotOf(br_pc), 2u);  // branches forced into slot 2
  const Instruction br = image.Fetch(br_pc);
  EXPECT_EQ(br.imm, 0);  // same bundle: the loop is one bundle long
}

TEST(Assembler, ForwardBranchDisplacement) {
  BinaryImage image;
  Assembler a(&image);
  const auto skip = a.NewLabel();
  const Addr br_pc = a.EmitBranch(BrCond(8, 0), skip);
  a.Emit(AddImm(8, 8, 1));  // skipped bundle
  a.FlushBundle();
  a.Bind(skip);
  a.Emit(Break());
  a.Finish();
  const Instruction br = image.Fetch(br_pc);
  EXPECT_EQ(br.imm, 2);  // branch bundle -> +2 bundles
}

TEST(Assembler, BrlGetsAbsoluteTarget) {
  BinaryImage image;
  Assembler a(&image);
  const auto target = a.NewLabel();
  a.EmitBranch(Brl(0), target);
  a.Bind(target);
  a.Emit(Break());
  a.Finish();
  const Instruction br = image.Fetch(MakePc(image.code_base(), 2));
  EXPECT_EQ(static_cast<Addr>(br.imm), image.code_base() + kBundleBytes);
}

TEST(Assembler, UnboundLabelAborts) {
  BinaryImage image;
  Assembler a(&image);
  const auto label = a.NewLabel();
  a.EmitBranch(BrCond(8, 0), label);
  EXPECT_DEATH(a.Finish(), "unbound");
}

TEST(Assembler, CurrentPcTracksOpenBundle) {
  BinaryImage image;
  Assembler a(&image);
  EXPECT_EQ(a.CurrentPc(), MakePc(image.code_base(), 0));
  a.Emit(Nop());
  EXPECT_EQ(a.CurrentPc(), MakePc(image.code_base(), 1));
  a.Emit(Nop());
  a.Emit(Nop());
  EXPECT_EQ(a.CurrentPc(), MakePc(image.code_base() + 16, 0));
}

// --- Disassembler -----------------------------------------------------------------

TEST(Disasm, MatchesItaniumSyntax) {
  EXPECT_EQ(Disassemble(Pred(16, LdfPostInc(32, 2, 8))),
            "(p16) ldfd f32=[r2],8");
  EXPECT_EQ(Disassemble(Pred(16, Lfetch(43))), "(p16) lfetch.nt1 [r43]");
  LfetchHint excl;
  excl.excl = true;
  EXPECT_EQ(Disassemble(Lfetch(43, excl)), "lfetch.excl.nt1 [r43]");
  EXPECT_EQ(Disassemble(Pred(21, Fma(44, 6, 37, 43))),
            "(p21) fma.d f44=f6,f37,f43");
  EXPECT_EQ(Disassemble(Pred(23, Stf(40, 46))), "(p23) stfd [r40]=f46");
  EXPECT_EQ(Disassemble(Ld(8, 28, 27, LoadHint::kBias)),
            "ld8.bias r28=[r27]");
  EXPECT_EQ(Disassemble(BrCtop(-3)), "br.ctop.sptk .b+(-3)");
  EXPECT_EQ(Disassemble(Break()), "break.b 0");
}

TEST(Disasm, RangeShowsBundles) {
  BinaryImage image;
  const Addr b0 = image.AppendBundle(Pred(16, Ldf(38, 33)),
                                     Pred(16, Lfetch(43)), Nop(Unit::kB));
  const std::string text = DisassembleRange(image, b0, image.code_end());
  EXPECT_NE(text.find("(p16) ldfd f38=[r33]"), std::string::npos);
  EXPECT_NE(text.find("lfetch.nt1 [r43]"), std::string::npos);
}

}  // namespace
}  // namespace cobra::isa
