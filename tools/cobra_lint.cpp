// cobra_lint: static MIA-64 binary checker over every image this repo can
// generate — each kgen kernel family and each NPB benchmark, under every
// compiler prefetch policy, plus (with --fuzz) a seeded corpus of the same
// generated programs the coherence fuzzer executes. A shipped binary must
// come back clean; the CI runs this as a gate.
//
// Usage: cobra_lint [-v] [--json=FILE] [--fuzz=N]
//   -v           print the per-image report even when clean
//   --json=FILE  write a machine-readable report:
//                  { "images": [<per-image report, see analysis/lint.h>],
//                    "images_total": n, "images_clean": n, "findings": n }
//   --fuzz=N     additionally lint N fuzz-generated programs (the SMP
//                sweep's seed base, so CI lints the exact binaries the
//                default coherence fuzz executes)
//
// Exit code: the total number of findings across all images (clamped to
// 125 so it never collides with shell/signal codes), 2 on usage error.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "npb/common.h"
#include "support/json.h"
#include "verify/fuzz.h"

namespace {

using cobra::analysis::LintImage;
using cobra::analysis::LintReport;
using cobra::kgen::PrefetchPolicy;
using cobra::kgen::Program;

struct PolicyCase {
  const char* label;
  PrefetchPolicy pf;
};

std::vector<PolicyCase> Policies() {
  return {{"prefetch", PrefetchPolicy{}},
          {"noprefetch", PrefetchPolicy::None()},
          {"excl", PrefetchPolicy::Excl()}};
}

// One linked "binary" holding every kgen kernel under one policy.
void EmitAllKernels(Program& prog, const PrefetchPolicy& pf) {
  using namespace cobra::kgen;
  EmitDaxpy(prog, "daxpy", pf);
  for (int op = 0; op < kNumStreamOps; ++op) {
    StreamLoopSpec spec;
    spec.op = static_cast<StreamOp>(op);
    spec.prefetch = pf;
    EmitStreamLoop(prog, std::string("stream_") + StreamOpName(spec.op),
                   spec);
  }
  EmitReduction(prog, "reduce_sum", ReduceOp::kSum, pf);
  EmitReduction(prog, "reduce_dot", ReduceOp::kDot, pf);
  EmitReduction(prog, "reduce_sumsq", ReduceOp::kSumSq, pf);
  EmitReduction(prog, "reduce_max", ReduceOp::kMax, pf);
  EmitCsrMatvec(prog, "csr_matvec", pf);
  EmitHistogram(prog, "histogram", pf);
  EmitFill32(prog, "fill32", pf);
  EmitIntAccumulate(prog, "int_accumulate", pf);
  EmitRank(prog, "rank", pf);
  EmitPermute(prog, "permute", pf);
  EmitScan(prog, "scan", pf);
  EmitWhileCopy(prog, "while_copy", pf);
  EmitEpKernel(prog, "ep", pf);
}

int Run(bool verbose, const std::string& json_path, int fuzz_cases) {
  int images = 0;
  int dirty_images = 0;
  std::size_t total_findings = 0;
  cobra::support::Json image_reports = cobra::support::Json::Array();

  auto lint_one = [&](const std::string& label, const Program& prog,
                      const std::vector<std::pair<std::string,
                                                  cobra::isa::Addr>>&
                          kernels) {
    const LintReport report = LintImage(prog.image(), kernels);
    ++images;
    if (!report.clean) {
      ++dirty_images;
      total_findings += report.findings.size();
    }
    if (verbose || !report.clean) {
      std::cout << label << ": " << report.ToString() << "\n";
    }
    image_reports.Append(cobra::analysis::ReportJson(report, label));
  };

  for (const PolicyCase& policy : Policies()) {
    Program prog;
    EmitAllKernels(prog, policy.pf);
    lint_one(std::string("kgen[") + policy.label + "]", prog,
             prog.kernels());
  }

  for (const std::string& name : cobra::npb::SuiteNames()) {
    for (const PolicyCase& policy : Policies()) {
      Program prog;
      cobra::npb::MakeBenchmark(name)->Build(prog, policy.pf);
      lint_one("npb/" + name + "[" + policy.label + "]", prog,
               prog.kernels());
    }
  }

  // Seed base 1000 = the default SMP coherence sweep: the corpus linted
  // here is bit-identical to the binaries that sweep executes.
  for (int i = 0; i < fuzz_cases; ++i) {
    const auto seed = 1000 + static_cast<std::uint64_t>(i);
    const cobra::verify::FuzzCase c = cobra::verify::SmpFuzzCase(seed);
    Program prog;
    const auto kernels = cobra::verify::BuildFuzzProgram(c, prog);
    lint_one("fuzz/seed" + std::to_string(seed), prog, kernels);
  }

  std::cout << "cobra_lint: " << images - dirty_images << "/" << images
            << " images clean, " << total_findings << " findings\n";

  if (!json_path.empty()) {
    cobra::support::Json doc = cobra::support::Json::Object();
    doc.Set("images", std::move(image_reports));
    doc.Set("images_total", images);
    doc.Set("images_clean", images - dirty_images);
    doc.Set("findings", static_cast<std::int64_t>(total_findings));
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cobra_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << doc.Dump() << "\n";
  }

  return static_cast<int>(std::min<std::size_t>(total_findings, 125));
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::string json_path;
  int fuzz_cases = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-v") == 0 || std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--fuzz=", 7) == 0) {
      fuzz_cases = std::atoi(arg + 7);
      if (fuzz_cases <= 0) {
        std::cerr << "cobra_lint: --fuzz needs a positive case count\n";
        return 2;
      }
    } else {
      std::cerr << "usage: cobra_lint [-v] [--json=FILE] [--fuzz=N]\n";
      return 2;
    }
  }
  return Run(verbose, json_path, fuzz_cases);
}
