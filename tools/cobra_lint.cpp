// cobra_lint: static MIA-64 binary checker over every image this repo can
// generate — each kgen kernel family and each NPB benchmark, under every
// compiler prefetch policy. A shipped binary must come back clean; the CI
// runs this as a gate.
//
// Usage: cobra_lint [-v]
//   -v  print the per-image report even when clean
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "npb/common.h"

namespace {

using cobra::analysis::LintImage;
using cobra::analysis::LintReport;
using cobra::kgen::PrefetchPolicy;
using cobra::kgen::Program;

struct PolicyCase {
  const char* label;
  PrefetchPolicy pf;
};

std::vector<PolicyCase> Policies() {
  return {{"prefetch", PrefetchPolicy{}},
          {"noprefetch", PrefetchPolicy::None()},
          {"excl", PrefetchPolicy::Excl()}};
}

// One linked "binary" holding every kgen kernel under one policy.
void EmitAllKernels(Program& prog, const PrefetchPolicy& pf) {
  using namespace cobra::kgen;
  EmitDaxpy(prog, "daxpy", pf);
  for (int op = 0; op < kNumStreamOps; ++op) {
    StreamLoopSpec spec;
    spec.op = static_cast<StreamOp>(op);
    spec.prefetch = pf;
    EmitStreamLoop(prog, std::string("stream_") + StreamOpName(spec.op),
                   spec);
  }
  EmitReduction(prog, "reduce_sum", ReduceOp::kSum, pf);
  EmitReduction(prog, "reduce_dot", ReduceOp::kDot, pf);
  EmitReduction(prog, "reduce_sumsq", ReduceOp::kSumSq, pf);
  EmitReduction(prog, "reduce_max", ReduceOp::kMax, pf);
  EmitCsrMatvec(prog, "csr_matvec", pf);
  EmitHistogram(prog, "histogram", pf);
  EmitFill32(prog, "fill32", pf);
  EmitIntAccumulate(prog, "int_accumulate", pf);
  EmitRank(prog, "rank", pf);
  EmitPermute(prog, "permute", pf);
  EmitScan(prog, "scan", pf);
  EmitWhileCopy(prog, "while_copy", pf);
  EmitEpKernel(prog, "ep", pf);
}

int Run(bool verbose) {
  int images = 0;
  int dirty_images = 0;
  std::size_t total_findings = 0;

  auto lint_one = [&](const std::string& label, const Program& prog) {
    const LintReport report = LintImage(prog.image(), prog.kernels());
    ++images;
    if (!report.clean) {
      ++dirty_images;
      total_findings += report.findings.size();
    }
    if (verbose || !report.clean) {
      std::cout << label << ": " << report.ToString() << "\n";
    }
  };

  for (const PolicyCase& policy : Policies()) {
    Program prog;
    EmitAllKernels(prog, policy.pf);
    lint_one(std::string("kgen[") + policy.label + "]", prog);
  }

  for (const std::string& name : cobra::npb::SuiteNames()) {
    for (const PolicyCase& policy : Policies()) {
      Program prog;
      cobra::npb::MakeBenchmark(name)->Build(prog, policy.pf);
      lint_one("npb/" + name + "[" + policy.label + "]", prog);
    }
  }

  std::cout << "cobra_lint: " << images - dirty_images << "/" << images
            << " images clean, " << total_findings << " findings\n";
  return dirty_images == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-v") == 0 ||
        std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      std::cerr << "usage: cobra_lint [-v]\n";
      return 2;
    }
  }
  return Run(verbose);
}
