#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md, PAPER.md and
everything under docs/ for markdown links of the form [text](target).
External links (http/https/mailto) are ignored; everything else is resolved
relative to the file containing the link (anchors stripped) and must exist
in the working tree. Exit status 1 lists every dead link.

Usage: python3 tools/check_doc_links.py [repo_root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root):
    for name in os.listdir(root):
        if name.endswith(".md"):
            yield os.path.join(root, name)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for dirpath, _, files in os.walk(docs):
            for name in files:
                if name.endswith(".md"):
                    yield os.path.join(dirpath, name)


def dead_links(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # Fenced code blocks routinely contain [x](y)-shaped text that is not a
    # link; drop them before scanning.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    base = os.path.dirname(path)
    for lineno_text in text.splitlines():
        for match in LINK_RE.finditer(lineno_text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            resolved = os.path.normpath(os.path.join(base, target.split("#")[0]))
            if not os.path.exists(resolved):
                yield target, resolved


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = []
    for path in sorted(doc_files(root)):
        for target, resolved in dead_links(path):
            failures.append(f"{os.path.relpath(path, root)}: dead link "
                            f"'{target}' (resolved to {resolved})")
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"{len(failures)} dead documentation link(s)", file=sys.stderr)
        return 1
    print("all documentation links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
