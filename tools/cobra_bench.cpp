// cobra_bench: the unified paper-conformance benchmark driver.
//
// Replaces the twelve per-figure bench binaries with one entry point that
// runs the whole suite and emits a machine-readable report:
//
//   cobra_bench --suite=paper --quick --json=BENCH_cobra.json
//   cobra_bench --suite=micro
//   cobra_bench --list
//   cobra_bench --only=npb_smp
//
// The JSON document's shape is pinned by tests/paper_trends_test.cpp
// (golden schema); the paper's headline trends are asserted by the same
// test on a quick run. COBRA_TRACE=<file> additionally writes a Chrome
// trace-event timeline of the simulated runs, and COBRA_ENGINE selects the
// host execution engine (bit-identical results either way).
#include <cstdio>
#include <cstring>
#include <string>

#include "compare.h"
#include "suite.h"
#include "support/json.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--suite=paper|micro] [--quick] [--sample] [--json=FILE]\n"
      "          [--only=SUBSTRING] [--compare=OLD.json] [--list] [--quiet]\n"
      "\n"
      "  --suite=NAME   paper (default): Table 1, Fig 2/3/5/6/7, ablations,\n"
      "                 insertion; micro: execution-engine studies\n"
      "  --quick        CI-sized matrices (same experiments, same schema)\n"
      "  --sample       run the NPB matrices in sampled mode: a fast-forward\n"
      "                 BBV profiling pass, then detailed simulation of only\n"
      "                 the representative phase intervals (warmed from\n"
      "                 checkpoints); reported counters are projections\n"
      "  --json=FILE    write the report document to FILE\n"
      "  --only=SUB     run only experiments whose name contains SUB\n"
      "  --compare=OLD  diff this run's report against a previous report,\n"
      "                 metric by metric (exact for simulated counters,\n"
      "                 ignoring host.* perf keys); exit 1 on any drift\n"
      "  --list         print experiment names with descriptions and exit\n"
      "  --schema       print the report's schema signature instead of the\n"
      "                 summary (regenerates tests/golden/bench_schema.txt)\n"
      "  --quiet        suppress progress lines on stderr\n"
      "\n"
      "environment: COBRA_ENGINE=serial|parallel[:N][@Q], COBRA_TRACE=FILE,\n"
      "             COBRA_SAMPLE=<interval_insts>[:<max_phases>]\n",
      argv0);
  return 2;
}

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cobra;

  std::string suite = "paper";
  std::string json_path;
  std::string compare_path;
  bench::SuiteOptions options;
  options.echo = true;
  bool list = false;
  bool schema = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(arg, "--sample") == 0) {
      options.sample = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--schema") == 0) {
      schema = true;
      options.echo = false;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      options.echo = false;
    } else if (FlagValue(arg, "--suite", &value)) {
      suite = value;
    } else if (FlagValue(arg, "--json", &value)) {
      json_path = value;
    } else if (FlagValue(arg, "--only", &value)) {
      options.only = value;
    } else if (FlagValue(arg, "--compare", &value)) {
      compare_path = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (suite != "paper" && suite != "micro") return Usage(argv[0]);

  if (list) {
    const auto infos = suite == "paper" ? bench::PaperExperimentList()
                                        : bench::MicroExperimentList();
    for (const auto& info : infos) {
      std::printf("%-20s %s\n", info.name.c_str(), info.description.c_str());
    }
    return 0;
  }

  const support::Json doc = suite == "paper" ? bench::RunPaperSuite(options)
                                             : bench::RunMicroSuite(options);

  if (schema) {
    std::printf("%s\n", doc.SchemaSignature().c_str());
    return 0;
  }

  // Human-readable summary: one line per experiment, plus its derived
  // headline numbers (the full data lives in the JSON report).
  std::printf("cobra_bench suite=%s quick=%s engine=%s\n", suite.c_str(),
              options.quick ? "yes" : "no",
              doc.At("engine").AsString().c_str());
  for (const support::Json& e : doc.At("experiments").elements()) {
    std::printf("  %-20s %-20s rows=%zu", e.At("name").AsString().c_str(),
                e.At("figure").AsString().c_str(), e.At("rows").size());
    for (const auto& [key, value] : e.At("derived").items()) {
      if (value.is_number()) {
        std::printf("  %s=%.4g", key.c_str(), value.AsDouble());
      } else if (value.kind() == support::Json::Kind::kBool) {
        std::printf("  %s=%s", key.c_str(), value.AsBool() ? "yes" : "NO");
      }
    }
    std::printf("\n");
  }

  if (!json_path.empty()) {
    const std::string text = doc.Dump();
    std::FILE* f = std::fopen(json_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cobra_bench: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", json_path.c_str(), text.size() + 1);
  }

  if (!compare_path.empty()) {
    std::string old_text;
    if (!ReadFile(compare_path, &old_text)) {
      std::fprintf(stderr, "cobra_bench: cannot read %s\n",
                   compare_path.c_str());
      return 2;
    }
    std::string error;
    const auto old_doc = support::Json::Parse(old_text, &error);
    if (!old_doc.has_value()) {
      std::fprintf(stderr, "cobra_bench: %s: %s\n", compare_path.c_str(),
                   error.c_str());
      return 2;
    }
    const bench::CompareResult cmp = bench::CompareReports(*old_doc, doc);
    if (!cmp.identical()) {
      for (const std::string& line : cmp.diffs) {
        std::fprintf(stderr, "cobra_bench: compare: %s\n", line.c_str());
      }
      std::fprintf(stderr,
                   "cobra_bench: compare: %llu difference(s) vs %s "
                   "(host keys ignored)\n",
                   static_cast<unsigned long long>(cmp.total_diffs),
                   compare_path.c_str());
      return 1;
    }
    std::printf("compare: OK, matches %s (host keys ignored)\n",
                compare_path.c_str());
  }
  return 0;
}
