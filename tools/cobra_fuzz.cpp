// Standalone driver for the deterministic coherence fuzzer.
//
// Runs seeded random workloads (see src/verify/fuzz.h) on the SMP and/or
// NUMA machine shapes with the coherence checker + golden memory oracle
// enabled, under both the serial and the parallel engine, and diffs the
// fingerprints. Any invariant violation aborts with the seed needed to
// replay; a fingerprint mismatch between engines is reported and counted.
//
//   cobra_fuzz [--cases=N] [--seed=N] [--machine=smp|numa|both]
//              [--engine=SPEC]
//
//   --cases=N      seeds per machine shape (default 100)
//   --seed=N       run exactly one seed (also honoured from the
//                  COBRA_FUZZ_SEED environment variable)
//   --machine=...  restrict to one machine shape (default both)
//   --engine=SPEC  compare serial against SPEC (default "parallel:4";
//                  accepts anything machine::ParseEngineSpec does)
//   --dump         print every case's fingerprint (counters + data hash)
//   --verify       also deploy every emitted loop of each case through the
//                  trace cache and run the patch-safety verifier on the
//                  deploy/revert/re-apply cycle (COBRA_VERIFY=1 does the
//                  same from the environment)
//   --planner      strategy-engine differential instead of the engine
//                  diff: run each case twice under an attached COBRA
//                  runtime — COBRA_PLANNER=heuristic vs =cost — and check
//                  the final memory images are bit-identical (the planner
//                  only picks which semantics-preserving patches go live);
//                  every deploy passes the patch-safety verifier
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "machine/engine.h"
#include "verify/fuzz.h"

namespace {

using cobra::verify::FuzzCase;

struct CliOptions {
  int cases = 100;
  bool have_seed = false;
  std::uint64_t seed = 0;
  bool run_smp = true;
  bool run_numa = true;
  bool dump = false;
  bool verify = false;
  bool planner = false;
  std::string engine_spec = "parallel:4";
};

[[noreturn]] void UsageError(const char* arg) {
  std::fprintf(stderr,
               "cobra_fuzz: bad argument '%s'\n"
               "usage: cobra_fuzz [--cases=N] [--seed=N] "
               "[--machine=smp|numa|both] [--engine=SPEC]\n",
               arg);
  std::exit(2);
}

CliOptions Parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--cases=", 8) == 0) {
      opt.cases = std::atoi(arg + 8);
      if (opt.cases <= 0) UsageError(arg);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.have_seed = true;
      opt.seed = std::strtoull(arg + 7, nullptr, 0);
    } else if (std::strcmp(arg, "--machine=smp") == 0) {
      opt.run_numa = false;
    } else if (std::strcmp(arg, "--machine=numa") == 0) {
      opt.run_smp = false;
    } else if (std::strcmp(arg, "--machine=both") == 0) {
    } else if (std::strcmp(arg, "--dump") == 0) {
      opt.dump = true;
    } else if (std::strcmp(arg, "--verify") == 0) {
      opt.verify = true;
    } else if (std::strcmp(arg, "--planner") == 0) {
      opt.planner = true;
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      opt.engine_spec = arg + 9;
    } else {
      UsageError(arg);
    }
  }
  if (const char* env = std::getenv("COBRA_FUZZ_SEED");
      env != nullptr && *env != '\0') {
    opt.have_seed = true;
    opt.seed = std::strtoull(env, nullptr, 0);
  }
  if (const char* env = std::getenv("COBRA_VERIFY");
      env != nullptr && *env != '\0' && *env != '0') {
    opt.verify = true;
  }
  return opt;
}

int RunShape(FuzzCase (*make)(std::uint64_t), std::uint64_t seed_base,
             const CliOptions& opt,
             const cobra::machine::EngineConfig& engine,
             int* verifier_passes) {
  cobra::machine::EngineConfig serial;
  serial.quantum = engine.quantum;
  int mismatches = 0;
  const int cases = opt.have_seed ? 1 : opt.cases;
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed =
        opt.have_seed ? opt.seed : seed_base + static_cast<std::uint64_t>(i);
    const FuzzCase c = make(seed);
    if (opt.planner) {
      const cobra::verify::PlannerCrossCheck xc =
          cobra::verify::RunFuzzCaseWithPlanner(c, engine);
      *verifier_passes += static_cast<int>(xc.verifier_passes);
      if (cobra::verify::MemoryImageOf(xc.heuristic_fingerprint) !=
          cobra::verify::MemoryImageOf(xc.cost_fingerprint)) {
        ++mismatches;
        std::fprintf(stderr,
                     "MISMATCH machine=%s seed=%" PRIu64
                     ": heuristic and cost-planner memory images differ\n"
                     "--- heuristic ---\n%s--- cost ---\n%s",
                     c.machine_name.c_str(), seed,
                     xc.heuristic_fingerprint.c_str(),
                     xc.cost_fingerprint.c_str());
      } else {
        std::printf("ok machine=%s seed=%" PRIu64 " planner deploys=%" PRIu64
                    "/%" PRIu64 " candidates=%" PRIu64 "\n",
                    c.machine_name.c_str(), seed, xc.heuristic_deployments,
                    xc.cost_deployments, xc.cost_candidates);
        if (opt.dump) std::fputs(xc.cost_fingerprint.c_str(), stdout);
      }
      continue;
    }
    if (opt.verify) {
      *verifier_passes += cobra::verify::VerifyFuzzDeployments(c);
    }
    const std::string a = RunFuzzCase(c, serial);
    const std::string b = RunFuzzCase(c, engine);
    if (a != b) {
      ++mismatches;
      std::fprintf(stderr,
                   "MISMATCH machine=%s seed=%" PRIu64
                   ": serial and %s fingerprints differ\n"
                   "--- serial ---\n%s--- %s ---\n%s",
                   c.machine_name.c_str(), seed, opt.engine_spec.c_str(),
                   a.c_str(), opt.engine_spec.c_str(), b.c_str());
    } else {
      std::printf("ok machine=%s seed=%" PRIu64 "\n", c.machine_name.c_str(),
                  seed);
      if (opt.dump) std::fputs(a.c_str(), stdout);
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = Parse(argc, argv);
  const cobra::machine::EngineConfig engine =
      cobra::machine::ParseEngineSpec(opt.engine_spec);
  int mismatches = 0;
  int verifier_passes = 0;
  if (opt.run_smp) {
    mismatches += RunShape(&cobra::verify::SmpFuzzCase, 1000, opt, engine,
                           &verifier_passes);
  }
  if (opt.run_numa) {
    mismatches += RunShape(&cobra::verify::NumaFuzzCase, 2000, opt, engine,
                           &verifier_passes);
  }
  if (opt.verify || opt.planner) {
    std::printf("cobra_fuzz: patch verifier ran %d passes\n", verifier_passes);
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "cobra_fuzz: %d fingerprint mismatch(es)\n",
                 mismatches);
    return 1;
  }
  std::puts("cobra_fuzz: all cases clean");
  return 0;
}
