// Quickstart: the smallest complete COBRA session.
//
// 1. Generate an aggressively-prefetching DAXPY binary (what icc -O3 gives
//    an OpenMP loop on Itanium 2).
// 2. Boot a simulated 4-way Itanium 2 SMP machine with the binary.
// 3. Attach the COBRA runtime (monitoring threads + optimization thread).
// 4. Run the OpenMP-style parallel loop repeatedly; COBRA discovers the
//    hot loop from BTB samples, detects the coherent-miss pathology, and
//    patches the binary at runtime.
// 5. Compare against an identical run without COBRA.
//
// Build & run:  ./build/examples/quickstart
// Set COBRA_ENGINE=parallel[:N] to run the simulation on N host threads —
// the cycle counts and COBRA decisions are bit-identical to the serial run.
#include <cstdio>

#include "cobra/cobra.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "rt/team.h"

using namespace cobra;

namespace {

struct RunResult {
  Cycle cycles = 0;
  core::CobraRuntime::Stats stats;
};

RunResult RunDaxpy(bool with_cobra) {
  // --- 1. The program: a Figure 2 style DAXPY kernel --------------------
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  constexpr std::int64_t kN = 8192;  // 128 KB working set (x[] + y[])
  const mem::Addr x = prog.Alloc(kN * 8);
  const mem::Addr y = prog.Alloc(kN * 8);

  // --- 2. The machine: 4-way Itanium 2 SMP ------------------------------
  machine::MachineConfig cfg = machine::SmpServerConfig(4);
  cfg.mem.memory_bytes = 1 << 24;
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<mem::Addr>(i), 2.0);
  }

  // --- 3. COBRA, preloaded like the real shared library -----------------
  std::unique_ptr<core::CobraRuntime> cobra;
  if (with_cobra) {
    core::CobraConfig config;
    config.strategy = core::OptKind::kNoprefetch;
    // DAXPY's coherence cost is on stores, which the load-only DEAR cannot
    // see; rely on the system-wide coherent-ratio trigger instead.
    config.require_coherent_load_in_loop = false;
    cobra = std::make_unique<core::CobraRuntime>(&machine, config);
    cobra->AttachAll(4);
  }

  // --- 4. The OpenMP-style outer loop ------------------------------------
  // The engine only affects host wall-clock, never simulated results;
  // COBRA_ENGINE=parallel[:N] fans the cores out over N host threads.
  rt::Team team(&machine, 4, machine::EngineConfigFromEnv());
  std::printf("  [engine: %s]\n", team.engine_name());
  const Cycle start = machine.GlobalTime();
  for (int rep = 0; rep < 40; ++rep) {
    team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, 4, kN);
      regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 0.5);
    });
  }

  RunResult result;
  result.cycles = machine.GlobalTime() - start;
  if (cobra) result.stats = cobra->stats();
  return result;
}

}  // namespace

int main() {
  std::printf("COBRA quickstart: OpenMP DAXPY, 128K working set, 4 threads\n\n");
  const RunResult baseline = RunDaxpy(false);
  const RunResult optimized = RunDaxpy(true);

  std::printf("baseline (icc prefetch binary): %10llu cycles\n",
              static_cast<unsigned long long>(baseline.cycles));
  std::printf("under COBRA:                    %10llu cycles  (%.1f%% faster)\n",
              static_cast<unsigned long long>(optimized.cycles),
              100.0 * (static_cast<double>(baseline.cycles) /
                           static_cast<double>(optimized.cycles) -
                       1.0));
  std::printf(
      "\nwhat COBRA did: %llu evaluations, coherent ratio %.2f, "
      "%llu traces deployed,\n%llu prefetches rewritten, %llu rollbacks\n",
      static_cast<unsigned long long>(optimized.stats.evaluations),
      optimized.stats.last_coherent_ratio,
      static_cast<unsigned long long>(optimized.stats.deployments),
      static_cast<unsigned long long>(optimized.stats.lfetches_rewritten),
      static_cast<unsigned long long>(optimized.stats.rollbacks));
  return 0;
}
