// Continuous re-adaptation: a program whose behaviour changes mid-run.
//
// Phase A: DAXPY over a 128 KB working set — cache-resident, so aggressive
//          prefetching only manufactures coherent misses; noprefetch wins.
// Phase B: the same loop over a 4 MB working set — memory-bound, so the
//          prefetches COBRA removed become valuable again.
//
// With `adaptive` mode on, COBRA deploys noprefetch traces during phase A,
// detects the phase change from the L3-misses-per-instruction shift, rolls
// everything back, and re-decides for phase B — the "Continuous Binary
// Re-Adaptation" the system is named after.
//
// Build & run:  ./build/examples/adaptive_phases
#include <cstdio>

#include "cobra/cobra.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "rt/team.h"

using namespace cobra;

namespace {

Cycle RunPhase(machine::Machine& machine, rt::Team& team,
               const kgen::LoopInfo& daxpy, mem::Addr x, mem::Addr y,
               std::int64_t n, int reps) {
  const Cycle start = machine.GlobalTime();
  for (int rep = 0; rep < reps; ++rep) {
    team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, 4, n);
      regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 0.25);
    });
  }
  return machine.GlobalTime() - start;
}

}  // namespace

int main() {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  constexpr std::int64_t kSmallN = 8192;     // 128 KB working set
  constexpr std::int64_t kLargeN = 262144;   // 4 MB working set
  const mem::Addr small_x = prog.Alloc(kSmallN * 8);
  const mem::Addr small_y = prog.Alloc(kSmallN * 8);
  const mem::Addr large_x = prog.Alloc(kLargeN * 8);
  const mem::Addr large_y = prog.Alloc(kLargeN * 8);

  machine::MachineConfig cfg = machine::SmpServerConfig(4);
  cfg.mem.memory_bytes = 1 << 26;
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < kLargeN; ++i) {
    if (i < kSmallN) {
      machine.memory().WriteDouble(small_x + 8 * static_cast<mem::Addr>(i), 1.0);
      machine.memory().WriteDouble(small_y + 8 * static_cast<mem::Addr>(i), 2.0);
    }
    machine.memory().WriteDouble(large_x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(large_y + 8 * static_cast<mem::Addr>(i), 2.0);
  }

  core::CobraConfig config;
  config.strategy = core::OptKind::kNoprefetch;
  config.adaptive = true;  // strategy switching + phase-change re-adaptation
  config.require_coherent_load_in_loop = false;  // store-side pathology
  core::CobraRuntime cobra(&machine, config);
  cobra.AttachAll(4);

  rt::Team team(&machine, 4, machine::EngineConfigFromEnv());
  std::printf("phase A: 128 KB working set, 40 passes (sharing-bound)\n");
  const Cycle phase_a =
      RunPhase(machine, team, daxpy, small_x, small_y, kSmallN, 40);
  const auto mid = cobra.stats();
  std::printf("  %llu cycles; COBRA deployed %llu trace(s), ratio %.2f\n",
              static_cast<unsigned long long>(phase_a),
              static_cast<unsigned long long>(mid.deployments),
              mid.last_coherent_ratio);

  std::printf("phase B: 4 MB working set, 12 passes (memory-bound)\n");
  const Cycle phase_b =
      RunPhase(machine, team, daxpy, large_x, large_y, kLargeN, 12);
  const auto end = cobra.stats();
  std::printf("  %llu cycles\n", static_cast<unsigned long long>(phase_b));

  std::printf(
      "\nre-adaptation: %llu phase change(s) detected, %llu rollback(s), "
      "%llu total deployments, %llu strategy switch(es)\n",
      static_cast<unsigned long long>(end.phase_changes),
      static_cast<unsigned long long>(end.rollbacks),
      static_cast<unsigned long long>(end.deployments),
      static_cast<unsigned long long>(end.strategy_switches));
  std::printf(
      "active traces at exit: %llu (the phase-A noprefetch patch must not "
      "survive into the\nmemory-bound phase unless it still pays off "
      "there)\n",
      static_cast<unsigned long long>(cobra.trace_cache().redirects_active()));
  return 0;
}
