// NPB explorer: run any benchmark of the mini-suite on either machine,
// with or without COBRA, and inspect what the runtime observed and did —
// the coherent-access ratio, discovered hot loops, delinquent loads, trace
// deployments and rollbacks.
//
// Usage:  ./build/examples/npb_explorer [benchmark] [threads] [smp|numa]
//                                       [baseline|noprefetch|excl]
// e.g.:   ./build/examples/npb_explorer cg 4 smp noprefetch
#include <cstdio>
#include <cstring>
#include <string>

#include "cobra/cobra.h"
#include "isa/disasm.h"
#include "npb/common.h"

using namespace cobra;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "cg";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const bool numa = argc > 3 && std::strcmp(argv[3], "numa") == 0;
  const std::string mode = argc > 4 ? argv[4] : "noprefetch";

  auto benchmark = npb::MakeBenchmark(name);
  kgen::Program prog;
  benchmark->Build(prog, kgen::PrefetchPolicy{});
  const kgen::StaticStats stats = prog.CountStatic();
  std::printf("%s: %llu lfetch, %llu br.ctop, %llu br.cloop, %llu br.wtop\n",
              name.c_str(), static_cast<unsigned long long>(stats.lfetch),
              static_cast<unsigned long long>(stats.br_ctop),
              static_cast<unsigned long long>(stats.br_cloop),
              static_cast<unsigned long long>(stats.br_wtop));

  machine::MachineConfig cfg =
      numa ? machine::AltixConfig(threads) : machine::SmpServerConfig(threads);
  cfg.mem.memory_bytes = 1 << 25;
  machine::Machine machine(cfg, &prog.image());
  benchmark->Init(machine, threads);

  std::unique_ptr<core::CobraRuntime> cobra;
  if (mode != "baseline") {
    core::CobraConfig config;
    config.sampling_period_insts = 1000;
    config.strategy = mode == "excl" ? core::OptKind::kPrefetchExcl
                                     : core::OptKind::kNoprefetch;
    cobra = std::make_unique<core::CobraRuntime>(&machine, config);
    cobra->AttachAll(threads);
  }

  rt::Team team(&machine, threads, machine::EngineConfigFromEnv());
  const Cycle cycles = benchmark->Run(team);
  const bool verified = benchmark->Verify(machine);

  std::uint64_t l3 = 0;
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    l3 += machine.stack(cpu).L3Misses();
  }
  const auto& bus = machine.fabric().TotalCounts();
  std::printf(
      "\n%s.S x%d on %s (%s): %llu cycles, %llu L3 misses, %llu bus "
      "transactions,\ncoherent events %llu (%.1f%% of bus traffic), "
      "verification %s\n",
      name.c_str(), threads, numa ? "Altix cc-NUMA" : "Itanium 2 SMP",
      mode.c_str(), static_cast<unsigned long long>(cycles),
      static_cast<unsigned long long>(l3),
      static_cast<unsigned long long>(bus.bus_memory),
      static_cast<unsigned long long>(bus.CoherentEvents()),
      bus.bus_memory ? 100.0 * static_cast<double>(bus.CoherentEvents()) /
                           static_cast<double>(bus.bus_memory)
                     : 0.0,
      verified ? "PASSED" : "FAILED");

  if (cobra) {
    const auto& st = cobra->stats();
    std::printf(
        "\nCOBRA: %llu evaluations, coherent ratio %.2f, %llu deployments, "
        "%llu rollbacks, %llu lfetches rewritten\n",
        static_cast<unsigned long long>(st.evaluations),
        st.last_coherent_ratio, static_cast<unsigned long long>(st.deployments),
        static_cast<unsigned long long>(st.rollbacks),
        static_cast<unsigned long long>(st.lfetches_rewritten));

    std::printf("\nhot loops discovered from BTB samples:\n");
    int shown = 0;
    for (const auto& loop : cobra->last_profile().hot_loops) {
      if (prog.image().InCodeCache(loop.head)) continue;
      if (++shown > 8) break;
      const auto* deployment = cobra->trace_cache().FindByHead(loop.head);
      std::printf("  loop @0x%llx..0x%llx  hits=%-6llu cost/sample=%-7.0f %s\n",
                  static_cast<unsigned long long>(loop.head),
                  static_cast<unsigned long long>(loop.back_branch_pc),
                  static_cast<unsigned long long>(loop.hits),
                  loop.CyclesPerSample(),
                  deployment == nullptr        ? ""
                  : deployment->active          ? "[optimized]"
                                                : "[rolled back]");
    }
    std::printf("\ncoherent delinquent loads (two-level DEAR filter):\n");
    shown = 0;
    for (const auto& load : cobra->last_profile().coherent_loads) {
      if (++shown > 6) break;
      std::printf("  pc=0x%llx  %-28s avg latency %.0f cycles (%llu coherent)\n",
                  static_cast<unsigned long long>(load.pc),
                  isa::Disassemble(prog.image().Fetch(load.pc)).c_str(),
                  load.AvgLatency(),
                  static_cast<unsigned long long>(load.coherent_samples));
    }
  }
  return verified ? 0 : 1;
}
