// The paper's Section 2 motivation study, end to end:
//   * prints the generated "icc -O2 -openmp" DAXPY assembly (Figure 2);
//   * sweeps working-set size x thread count for the three static binary
//     variants (prefetch / noprefetch / prefetch.excl), showing that no
//     single statically-compiled binary wins everywhere (Figure 3);
//   * prints the per-variant coherence-event counts that explain why.
//
// Build & run:  ./build/examples/daxpy_motivation
#include <cstdio>

#include "daxpy_experiment.h"
#include "isa/disasm.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "support/table.h"

using namespace cobra;

int main() {
  // --- Figure 2: the generated kernel -------------------------------------
  {
    kgen::Program prog;
    const kgen::LoopInfo daxpy =
        EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
    std::printf("Generated DAXPY kernel (cf. paper Figure 2):\n\n%s\n",
                isa::DisassembleRange(prog.image(), daxpy.head,
                                      isa::BundleAddr(daxpy.back_branch_pc) +
                                          isa::kBundleBytes)
                    .c_str());
  }

  // --- Figure 3: no static binary wins everywhere --------------------------
  std::printf(
      "Static-variant sweep (normalized to 1-thread prefetch per working "
      "set;\ncoherent events show why the winner changes):\n\n");
  support::TextTable table({"working set", "threads", "variant", "normalized",
                            "coherent events"});
  for (const std::size_t ws : {128 * 1024, 2 * 1024 * 1024}) {
    double baseline = 0.0;
    for (const int threads : {1, 4}) {
      for (const auto variant :
           {bench::DaxpyVariant::kPrefetch, bench::DaxpyVariant::kNoprefetch,
            bench::DaxpyVariant::kExcl}) {
        bench::DaxpyParams params;
        params.threads = threads;
        params.working_set_bytes = ws;
        params.variant = variant;
        params.reps = 24;
        const auto result = RunDaxpyExperiment(params);
        if (baseline == 0.0) baseline = static_cast<double>(result.cycles);
        table.AddRow(
            {std::to_string(ws / 1024) + "K", std::to_string(threads),
             bench::DaxpyVariantName(variant),
             support::TextTable::Num(
                 static_cast<double>(result.cycles) / baseline),
             support::TextTable::Int(
                 static_cast<long long>(result.coherent_events))});
      }
    }
  }
  table.Print();
  std::printf(
      "\nTakeaway (Section 2): at small working sets with several threads, "
      "aggressive prefetching\ninduces coherent misses and loses; at large "
      "working sets it wins. Only a runtime optimizer\ncan pick per "
      "situation — which is what COBRA does.\n");
  return 0;
}
