#include "compare.h"

#include <utility>

namespace cobra::bench {
namespace {

using support::Json;

const char* KindName(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::kNull:
      return "null";
    case Json::Kind::kBool:
      return "bool";
    case Json::Kind::kNumber:
      return "number";
    case Json::Kind::kString:
      return "string";
    case Json::Kind::kArray:
      return "array";
    case Json::Kind::kObject:
      return "object";
  }
  return "?";
}

void Record(CompareResult& out, std::size_t max_diffs, const std::string& path,
            std::string detail) {
  ++out.total_diffs;
  if (out.diffs.size() < max_diffs) {
    out.diffs.push_back(path + ": " + std::move(detail));
  }
}

void Diff(const Json& expected, const Json& actual, const std::string& path,
          CompareResult& out, std::size_t max_diffs) {
  if (expected.kind() != actual.kind()) {
    Record(out, max_diffs, path,
           std::string("kind ") + KindName(expected.kind()) + " vs " +
               KindName(actual.kind()));
    return;
  }
  switch (expected.kind()) {
    case Json::Kind::kObject: {
      for (const auto& [key, value] : expected.items()) {
        if (key == "host") continue;  // host-side perf: nondeterministic
        const std::string sub = path + "." + key;
        const Json* other = actual.Find(key);
        if (other == nullptr) {
          Record(out, max_diffs, sub, "missing from actual report");
          continue;
        }
        Diff(value, *other, sub, out, max_diffs);
      }
      for (const auto& [key, value] : actual.items()) {
        (void)value;
        if (key == "host") continue;
        if (expected.Find(key) == nullptr) {
          Record(out, max_diffs, path + "." + key,
                 "missing from expected report");
        }
      }
      break;
    }
    case Json::Kind::kArray: {
      const auto& a = expected.elements();
      const auto& b = actual.elements();
      if (a.size() != b.size()) {
        Record(out, max_diffs, path,
               "array length " + std::to_string(a.size()) + " vs " +
                   std::to_string(b.size()));
      }
      const std::size_t n = a.size() < b.size() ? a.size() : b.size();
      for (std::size_t i = 0; i < n; ++i) {
        Diff(a[i], b[i], path + "[" + std::to_string(i) + "]", out,
             max_diffs);
      }
      break;
    }
    default:
      // Scalars: Dump() is round-trippable (integers exact, doubles
      // shortest-round-trip), so serialized equality is value equality.
      if (expected.Dump() != actual.Dump()) {
        Record(out, max_diffs, path,
               expected.Dump() + " != " + actual.Dump());
      }
      break;
  }
}

}  // namespace

CompareResult CompareReports(const Json& expected, const Json& actual,
                             std::size_t max_diffs) {
  CompareResult result;
  Diff(expected, actual, "$", result, max_diffs);
  return result;
}

}  // namespace cobra::bench
