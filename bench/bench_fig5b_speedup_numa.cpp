// Figure 5(b): speedup of COBRA's coherent-memory-access optimizations on
// OpenMP NPB (class S), 8 threads on the SGI Altix cc-NUMA system.
#include "machine/machine.h"
#include "npb_experiment.h"

int main() {
  using namespace cobra;
  bench::PrintNpbFigure(
      "Figure 5(b): NPB speedup under COBRA, 8 threads, SGI Altix cc-NUMA",
      "Paper: noprefetch up to 68% (avg 17.5%); prefetch.excl up to 18% "
      "(avg 8.5%). Coherent misses cost far more across the interconnect, "
      "so gains exceed the SMP ones.",
      machine::AltixConfig(8), /*threads=*/8, /*metric=*/0);
  return 0;
}
