// Figure 2: the icc-generated Itanium assembly for the OpenMP DAXPY kernel
// (Figure 1). Prints our generator's disassembly — the prologue burst of
// six lfetches for y[0]'s first cache lines, and the software-pipelined
// body with its rotating-register load/store chains and the single
// alternating-stream lfetch targeting ~1200 bytes ahead — and checks the
// structural properties the paper's discussion relies on.
#include <cstdio>
#include <string>

#include "isa/disasm.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "support/check.h"

int main() {
  using namespace cobra;

  kgen::Program prog;
  const kgen::LoopInfo daxpy = EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});

  std::printf(
      "Figure 2: generated MIA-64 assembly for the DAXPY kernel\n"
      "(compare with the paper's icc 9.1 output: 6 prologue lfetches on "
      "y[], then a software-pipelined\n"
      "body with one lfetch per iteration alternating the x/y chains ~1200 "
      "bytes ahead)\n\n-- prologue --\n%s\n-- software-pipelined body "
      "(.b1_22) --\n%s",
      isa::DisassembleRange(prog.image(), daxpy.entry, daxpy.head).c_str(),
      isa::DisassembleRange(prog.image(), daxpy.head,
                            isa::BundleAddr(daxpy.back_branch_pc) +
                                isa::kBundleBytes)
          .c_str());

  // Structural checks (the bench fails loudly if the shape regresses).
  COBRA_CHECK(daxpy.lfetch_pcs.size() == 1);
  COBRA_CHECK(prog.image().Fetch(daxpy.back_branch_pc).op ==
              isa::Opcode::kBrCtop);
  const kgen::StaticStats stats = prog.CountStatic();
  COBRA_CHECK(stats.lfetch == 7);  // 6 prologue + 1 steady-state
  COBRA_CHECK(stats.br_ctop == 1);
  std::printf("\nshape checks passed: 6 prologue lfetches, 1 rotating "
              "steady-state lfetch, br.ctop loop\n");
  return 0;
}
