// Figure 5(a): speedup of COBRA's coherent-memory-access optimizations on
// OpenMP NPB (class S), 4 threads on the 4-way Itanium 2 SMP server.
#include "machine/machine.h"
#include "npb_experiment.h"

int main() {
  using namespace cobra;
  bench::PrintNpbFigure(
      "Figure 5(a): NPB speedup under COBRA, 4 threads, 4-way Itanium 2 SMP",
      "Paper: noprefetch up to 15% (avg 4.7%); prefetch.excl up to 8% "
      "(avg 2.7%). Baseline (icc prefetch binary) = 1.0.",
      machine::SmpServerConfig(4), /*threads=*/4, /*metric=*/0);
  return 0;
}
