// The unified paper-conformance benchmark suite behind tools/cobra_bench.
//
// One call runs every experiment the per-figure binaries used to print —
// Table 1, Figure 2's codegen shape, the Figure 3 DAXPY sweep, the NPB
// matrices behind Figures 5/6/7 on both machines, the DESIGN.md §4
// ablations and the ADORE-style insertion extension — and returns a single
// schema-stable support::Json document:
//
//   { schema_version, generator, suite, quick, engine,
//     experiments: [ { name, figure, description, machine, threads,
//                      rows: [...], derived: {...}, host: {...} }, ... ] }
//
// Row keys and types never depend on --quick or on measured values (only
// row *counts* change), so the golden-schema test can pin the document
// shape, and tests/paper_trends_test.cpp asserts the paper's headline
// trends directly on the returned tree.
//
// Every experiment also carries a "host" object (wall_seconds, sim_cycles,
// retired_insts, sim_cycles_per_host_second, sim_mips): host-side
// performance of the simulator itself. Its values are nondeterministic by
// nature; report-diffing tools (cobra_bench --compare) skip the object, and
// the underlying host.* registry metrics are excluded from determinism
// fingerprints.
#pragma once

#include <string>
#include <vector>

#include "machine/engine.h"
#include "support/json.h"

namespace cobra::bench {

struct SuiteOptions {
  // CI-sized matrices: fewer NPB benchmarks, one DAXPY working set, fewer
  // repetitions. Same experiments, same schema, < ~1 minute total.
  bool quick = false;
  // Substring filter on experiment names; empty runs everything.
  std::string only;
  // Progress lines on stderr (one per experiment) for interactive runs.
  bool echo = false;
  // Host execution engine for every simulated run (results are
  // bit-identical across engines); honours COBRA_ENGINE.
  machine::EngineConfig engine = machine::EngineConfigFromEnv();
  // Sampled simulation (cobra_bench --sample): the NPB matrices run the
  // two-pass BBV/checkpoint pipeline (perfmon/sample.h) and report
  // projected counters instead of direct measurements. Honours
  // COBRA_SAMPLE="<interval>[:<phases>]" for the schedule; same schema.
  bool sample = false;
};

// Canonical spec string for an engine config ("serial", "parallel:4@2048");
// inverse of machine::ParseEngineSpec, recorded in the report header.
std::string EngineSpecString(const machine::EngineConfig& config);

// Experiment names in run order (for the --only filter).
std::vector<std::string> PaperExperimentNames();
std::vector<std::string> MicroExperimentNames();

// Names plus one-line descriptions, in run order (cobra_bench --list).
struct ExperimentInfo {
  std::string name;
  std::string description;
};
std::vector<ExperimentInfo> PaperExperimentList();
std::vector<ExperimentInfo> MicroExperimentList();

// Runs the paper-conformance suite / the engine microbenchmarks and
// returns the full report document described above.
support::Json RunPaperSuite(const SuiteOptions& options = {});
support::Json RunMicroSuite(const SuiteOptions& options = {});

}  // namespace cobra::bench
