// Figure 7(a): normalized system-bus memory transactions under COBRA's
// optimizations, 4 threads on the 4-way Itanium 2 SMP server. L3 misses
// are serviced by bus transactions, so this tracks Figure 6(a).
#include "machine/machine.h"
#include "npb_experiment.h"

int main() {
  using namespace cobra;
  bench::PrintNpbFigure(
      "Figure 7(a): normalized bus memory transactions, 4 threads, SMP",
      "Paper: noprefetch -15.1% on average; prefetch.excl +4.9% on "
      "average. Baseline = 1.0; lower is better (correlates with Fig. 6a).",
      machine::SmpServerConfig(4), /*threads=*/4, /*metric=*/2);
  return 0;
}
