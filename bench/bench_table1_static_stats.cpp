// Table 1: static loop and prefetch statistics of the compiler-generated
// OpenMP NPB binaries — lfetch, br.ctop, br.cloop and br.wtop counts per
// benchmark (the mini-suite is smaller than real NPB, so absolute counts
// are scaled down; the structure — which benchmarks carry many prefetches,
// who uses wtop loops, EP's near-empty memory profile — is preserved).
#include <cstdio>

#include "kgen/program.h"
#include "npb/common.h"
#include "support/table.h"

int main() {
  using namespace cobra;

  std::printf(
      "Table 1: loops and prefetches in compiler-generated OpenMP NPB "
      "binaries\n"
      "Paper (real NPB + icc 9.1 -O3): BT 140/34/32/0, SP 276/67/22/0, "
      "LU 184/61/19/0, FT 258/45/9/8,\n"
      "                                MG 419/66/34/4, CG 433/69/29/2, "
      "EP 17/1/4/1, IS 76/19/13/2 (lfetch/ctop/cloop/wtop).\n\n");

  support::TextTable table(
      {"benchmark", "lfetch", "br.ctop", "br.cloop", "br.wtop"});
  for (const std::string& name : npb::SuiteNames()) {
    auto benchmark = npb::MakeBenchmark(name);
    kgen::Program prog;
    benchmark->Build(prog, kgen::PrefetchPolicy{});
    const kgen::StaticStats stats = prog.CountStatic();
    table.AddRow({name,
                  support::TextTable::Int(static_cast<long long>(stats.lfetch)),
                  support::TextTable::Int(static_cast<long long>(stats.br_ctop)),
                  support::TextTable::Int(static_cast<long long>(stats.br_cloop)),
                  support::TextTable::Int(static_cast<long long>(stats.br_wtop))});
  }
  table.Print();
  return 0;
}
