// Extension bench (not a paper figure): ADORE-style runtime prefetch
// *insertion* — COBRA's single-threaded ancestor [17], implemented here as
// a third strategy. A conservatively compiled (noprefetch) DAXPY at a
// memory-bound working set is run bare, under COBRA/insert-prefetch, and
// compared with the statically prefetched binary: runtime insertion should
// recover most of the gap the paper's Figure 3(a) 2M column shows.
#include <cstdio>

#include "cobra/cobra.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "rt/team.h"
#include "support/table.h"

using namespace cobra;

namespace {

struct Row {
  Cycle cycles = 0;
  std::uint64_t inserted = 0;
};

Row Run(bool static_prefetch, bool with_cobra, int threads) {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy",
                static_prefetch ? kgen::PrefetchPolicy{}
                                : kgen::PrefetchPolicy::None());
  constexpr std::int64_t kN = 262144;  // 4 MB working set
  const mem::Addr x = prog.Alloc(kN * 8);
  const mem::Addr y = prog.Alloc(kN * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(threads);
  cfg.mem.memory_bytes = 1 << 26;
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<mem::Addr>(i), 2.0);
  }

  std::unique_ptr<core::CobraRuntime> cobra;
  if (with_cobra) {
    core::CobraConfig config;
    config.strategy = core::OptKind::kInsertPrefetch;
    cobra = std::make_unique<core::CobraRuntime>(&machine, config);
    cobra->AttachAll(threads);
  }

  rt::Team team(&machine, threads, machine::EngineConfigFromEnv());
  const Cycle start = machine.GlobalTime();
  for (int rep = 0; rep < 12; ++rep) {
    team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, threads, kN);
      regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 0.5);
    });
  }
  Row row;
  row.cycles = machine.GlobalTime() - start;
  if (cobra) row.inserted = cobra->stats().prefetches_inserted;
  return row;
}

}  // namespace

int main() {
  std::printf(
      "ADORE-style runtime prefetch insertion (extension bench)\n"
      "DAXPY, 4 MB working set, memory-bound; the statically prefetched "
      "binary is the target to recover.\n\n");
  support::TextTable table({"threads", "binary / runtime", "cycles",
                            "vs noprefetch", "prefetches inserted"});
  for (const int threads : {1, 2}) {
    const Row bare = Run(false, false, threads);
    const Row inserted = Run(false, true, threads);
    const Row compiled = Run(true, false, threads);
    auto Norm = [&](const Row& row) {
      return support::TextTable::Num(static_cast<double>(row.cycles) /
                                     static_cast<double>(bare.cycles));
    };
    table.AddRow({std::to_string(threads), "noprefetch binary (bare)",
                  support::TextTable::Int(static_cast<long long>(bare.cycles)),
                  "1.000", "-"});
    table.AddRow({std::to_string(threads), "noprefetch + COBRA insertion",
                  support::TextTable::Int(
                      static_cast<long long>(inserted.cycles)),
                  Norm(inserted),
                  support::TextTable::Int(
                      static_cast<long long>(inserted.inserted))});
    table.AddRow({std::to_string(threads), "statically prefetched binary",
                  support::TextTable::Int(
                      static_cast<long long>(compiled.cycles)),
                  Norm(compiled), "-"});
  }
  table.Print();
  return 0;
}
