// google-benchmark microbenchmarks of the simulation substrate itself:
// instruction encode/decode, cache-stack access paths, coherence fabric
// transactions, and interpreter throughput. These quantify the simulator's
// own performance (host-side), not simulated results.
#include <benchmark/benchmark.h>

#include <memory>
#include <span>

#include "perfmon/sampling.h"
#include "isa/assembler.h"
#include "isa/encoding.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "mem/cache_stack.h"
#include "mem/snoop_bus.h"
#include "rt/team.h"

namespace {

using namespace cobra;

void BM_EncodeDecode(benchmark::State& state) {
  const isa::Instruction inst = isa::Pred(16, isa::LdfPostInc(32, 2, 8));
  for (auto _ : state) {
    const isa::EncodedSlot slot = isa::Encode(inst);
    benchmark::DoNotOptimize(isa::Decode(slot));
  }
}
BENCHMARK(BM_EncodeDecode);

void BM_CacheStackL2Hit(benchmark::State& state) {
  mem::MemConfig cfg = mem::ItaniumSmpConfig();
  cfg.memory_bytes = 1 << 22;
  mem::SnoopBus bus(cfg);
  mem::CacheStack stack(0, cfg);
  stack.AttachFabric(&bus);
  bus.AttachStacks({&stack});
  stack.Load(0x1000, 8, true, false, 0);
  Cycle now = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.Load(0x1000, 8, true, false, now));
    now += 10;
  }
}
BENCHMARK(BM_CacheStackL2Hit);

void BM_BusCoherentMiss(benchmark::State& state) {
  mem::MemConfig cfg = mem::ItaniumSmpConfig();
  cfg.memory_bytes = 1 << 22;
  mem::SnoopBus bus(cfg);
  mem::CacheStack a(0, cfg), b(1, cfg);
  a.AttachFabric(&bus);
  b.AttachFabric(&bus);
  bus.AttachStacks({&a, &b});
  Cycle now = 0;
  for (auto _ : state) {
    a.Store(0x1000, 8, now);       // M in a
    benchmark::DoNotOptimize(b.Load(0x1000, 8, false, false, now + 500));
    b.Store(0x1000, 8, now + 1000);  // bounce back
    now += 2000;
  }
}
BENCHMARK(BM_BusCoherentMiss);

void BM_InterpreterDaxpy(benchmark::State& state) {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  const std::int64_t n = 4096;
  const mem::Addr x = prog.Alloc(static_cast<std::uint64_t>(n) * 8);
  const mem::Addr y = prog.Alloc(static_cast<std::uint64_t>(n) * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(1);
  cfg.mem.memory_bytes = 1 << 22;
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < n; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<mem::Addr>(i), 2.0);
  }
  rt::Team team(&machine, 1, machine::EngineConfigFromEnv());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const std::uint64_t before = machine.core(0).instructions_retired();
    team.Run(daxpy.entry, [&](int, cpu::RegisterFile& regs) {
      regs.WriteGr(14, x);
      regs.WriteGr(15, y);
      regs.WriteGr(16, static_cast<std::uint64_t>(n));
      regs.WriteFr(6, 0.5);
    });
    instructions += machine.core(0).instructions_retired() - before;
  }
  state.counters["sim_instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterDaxpy)->Unit(benchmark::kMillisecond);

void BM_SamplingOverhead(benchmark::State& state) {
  // Interpreter throughput with perfmon sampling attached (period 2000).
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  const std::int64_t n = 4096;
  const mem::Addr x = prog.Alloc(static_cast<std::uint64_t>(n) * 8);
  const mem::Addr y = prog.Alloc(static_cast<std::uint64_t>(n) * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(1);
  cfg.mem.memory_bytes = 1 << 22;
  machine::Machine machine(cfg, &prog.image());
  perfmon::SamplingDriver driver(&machine, perfmon::SamplingConfig{});
  std::uint64_t sink = 0;
  driver.StartMonitoring(0, 0,
                         [&sink](int, std::span<const perfmon::Sample> b) {
                           sink += b.size();
                         });
  rt::Team team(&machine, 1, machine::EngineConfigFromEnv());
  for (auto _ : state) {
    team.Run(daxpy.entry, [&](int, cpu::RegisterFile& regs) {
      regs.WriteGr(14, x);
      regs.WriteGr(15, y);
      regs.WriteGr(16, static_cast<std::uint64_t>(n));
      regs.WriteFr(6, 0.5);
    });
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SamplingOverhead)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
