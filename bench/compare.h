// Report comparison behind `cobra_bench --compare=OLD.json`: a structural,
// metric-by-metric diff of two benchmark report documents.
//
// Simulated metrics must match *exactly* — the suite is deterministic by
// contract, so any numeric drift is a bug (or an intentional model change
// that must re-bless the golden file). Any object member named "host" is
// skipped on both sides: host-side performance readings (wall-clock,
// sim-MIPS) are nondeterministic by design and carry no simulated state.
// Missing keys, extra keys, kind mismatches and array-length mismatches all
// count as drift.
//
// Used two ways: CI pins the quick-suite metrics to a committed golden file
// (tests/golden/bench_quick_metrics.json), and developers prove a refactor
// bit-identical by comparing a fresh report against a saved baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.h"

namespace cobra::bench {

struct CompareResult {
  // Human-readable "path: detail" lines, capped at the max_diffs passed to
  // CompareReports; total_diffs keeps the full count.
  std::vector<std::string> diffs;
  std::uint64_t total_diffs = 0;
  bool identical() const { return total_diffs == 0; }
};

// Diffs `expected` against `actual`, ignoring every object member named
// "host" on either side. Scalars compare by exact serialized value.
CompareResult CompareReports(const support::Json& expected,
                             const support::Json& actual,
                             std::size_t max_diffs = 32);

}  // namespace cobra::bench
