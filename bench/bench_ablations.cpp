// Ablation studies for the design choices called out in DESIGN.md §4:
//
//   A1. Two-level DEAR filter / coherent-ratio trigger: disable COBRA's
//       selection filters and watch it optimize loops it should leave alone.
//   A2. Selective (runtime) vs blind (static) noprefetch: a binary compiled
//       without any prefetches loses where prefetching pays.
//   A3. Measured epochs: without the before/after CPI measurement,
//       mis-deployments stay and drag the program down.
//   A4. Monitoring overhead: sampling cost charged per delivered batch.
//
// Each row reports speedup over the aggressive-prefetch baseline (>1 is
// faster) on the 4-way SMP machine at 4 threads.
#include <cstdio>

#include "machine/machine.h"
#include "npb_experiment.h"
#include "support/table.h"

using namespace cobra;
using bench::NpbMode;
using bench::NpbOptions;
using bench::RunNpbExperiment;

namespace {

double Speedup(const bench::NpbRunResult& base,
               const bench::NpbRunResult& opt) {
  return static_cast<double>(base.cycles) / static_cast<double>(opt.cycles);
}

}  // namespace

int main() {
  const auto machine = machine::SmpServerConfig(4);
  const int threads = 4;
  // FT is the adversarial case (its prefetches hide coherent misses, so
  // removing them blindly hurts); MG is the friendly case (prefetch-induced
  // coherent misses dominate); CG sits between.
  const char* benchmarks[] = {"ft", "mg", "cg"};

  support::TextTable table(
      {"benchmark", "configuration", "speedup", "deployments", "rollbacks"});

  for (const char* name : benchmarks) {
    const auto base =
        RunNpbExperiment(name, machine, threads, NpbMode::kBaseline);

    // Full COBRA (reference row).
    {
      const auto r =
          RunNpbExperiment(name, machine, threads, NpbMode::kCobraNoprefetch);
      table.AddRow({name, "COBRA noprefetch (full)",
                    support::TextTable::Num(Speedup(base, r)),
                    support::TextTable::Int(static_cast<long long>(
                        r.cobra.deployments)),
                    support::TextTable::Int(static_cast<long long>(
                        r.cobra.rollbacks))});
    }
    // A1: selection filters off.
    {
      NpbOptions options;
      options.tweak_config = [](core::CobraConfig& cfg) {
        cfg.require_coherent_load_in_loop = false;
        cfg.require_coherent_ratio = false;
      };
      const auto r = RunNpbExperiment(name, machine, threads,
                                      NpbMode::kCobraNoprefetch, options);
      table.AddRow({name, "A1: DEAR/ratio filters off",
                    support::TextTable::Num(Speedup(base, r)),
                    support::TextTable::Int(static_cast<long long>(
                        r.cobra.deployments)),
                    support::TextTable::Int(static_cast<long long>(
                        r.cobra.rollbacks))});
    }
    // A3: no rollback, no brake.
    {
      NpbOptions options;
      options.tweak_config = [](core::CobraConfig& cfg) {
        cfg.measured_epochs = false;
      };
      const auto r = RunNpbExperiment(name, machine, threads,
                                      NpbMode::kCobraNoprefetch, options);
      table.AddRow({name, "A3: measured epochs off",
                    support::TextTable::Num(Speedup(base, r)),
                    support::TextTable::Int(static_cast<long long>(
                        r.cobra.deployments)),
                    support::TextTable::Int(static_cast<long long>(
                        r.cobra.rollbacks))});
    }
    // A2: blind static noprefetch binary.
    {
      NpbOptions options;
      options.static_noprefetch_binary = true;
      const auto r = RunNpbExperiment(name, machine, threads,
                                      NpbMode::kBaseline, options);
      table.AddRow({name, "A2: blind static noprefetch",
                    support::TextTable::Num(Speedup(base, r)), "-", "-"});
    }
    // A4: monitoring overhead sweep.
    for (const Cycle overhead : {Cycle{500}, Cycle{4000}}) {
      NpbOptions options;
      options.tweak_config = [overhead](core::CobraConfig& cfg) {
        cfg.monitor_overhead_cycles = overhead;
      };
      const auto r = RunNpbExperiment(name, machine, threads,
                                      NpbMode::kCobraNoprefetch, options);
      table.AddRow({name,
                    "A4: overhead " + std::to_string(overhead) + " cyc/batch",
                    support::TextTable::Num(Speedup(base, r)),
                    support::TextTable::Int(static_cast<long long>(
                        r.cobra.deployments)),
                    support::TextTable::Int(static_cast<long long>(
                        r.cobra.rollbacks))});
    }
  }

  std::printf("Ablations of COBRA's design choices (DESIGN.md §4)\n\n");
  table.Print();
  return 0;
}
