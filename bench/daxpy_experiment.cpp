#include "daxpy_experiment.h"

#include <vector>

#include "kgen/emitters.h"
#include "kgen/program.h"
#include "rt/team.h"
#include "support/check.h"

namespace cobra::bench {

const char* DaxpyVariantName(DaxpyVariant variant) {
  switch (variant) {
    case DaxpyVariant::kPrefetch: return "prefetch";
    case DaxpyVariant::kNoprefetch: return "noprefetch";
    case DaxpyVariant::kExcl: return "prefetch.excl";
  }
  return "?";
}

DaxpyResult RunDaxpyExperiment(const DaxpyParams& params) {
  using mem::Addr;

  kgen::PrefetchPolicy policy;
  switch (params.variant) {
    case DaxpyVariant::kPrefetch: break;
    case DaxpyVariant::kNoprefetch: policy = kgen::PrefetchPolicy::None(); break;
    case DaxpyVariant::kExcl: policy = kgen::PrefetchPolicy::Excl(); break;
  }

  kgen::Program prog;
  const kgen::LoopInfo daxpy = EmitDaxpy(prog, "daxpy", policy);

  const std::int64_t n =
      static_cast<std::int64_t>(params.working_set_bytes / 16);
  COBRA_CHECK(n >= 16);
  const Addr x = prog.Alloc(static_cast<std::uint64_t>(n) * 8, 128);
  const Addr y = prog.Alloc(static_cast<std::uint64_t>(n) * 8, 128);

  machine::Machine machine(params.machine, &prog.image());
  const double a = 0.5;
  for (std::int64_t i = 0; i < n; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<Addr>(i), 1.0 + 0.001 * i);
    machine.memory().WriteDouble(y + 8 * static_cast<Addr>(i), 2.0 - 0.001 * i);
  }
  // First-touch placement: each thread initializes its own partition
  // (Section 3.2's assumption), so pages land on the thread's node.
  for (int tid = 0; tid < params.threads; ++tid) {
    const auto chunk = rt::StaticChunk(tid, params.threads, n);
    const int node = machine.NodeOf(tid);
    machine.memory().PlaceRange(x + 8 * static_cast<Addr>(chunk.begin),
                                x + 8 * static_cast<Addr>(chunk.end), node);
    machine.memory().PlaceRange(y + 8 * static_cast<Addr>(chunk.begin),
                                y + 8 * static_cast<Addr>(chunk.end), node);
  }

  rt::Team team(&machine, params.threads, params.engine);
  auto RunRep = [&] {
    team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, params.threads, n);
      regs.WriteGr(14, x + 8 * static_cast<Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, a);
    });
  };

  for (int rep = 0; rep < params.warmup_reps; ++rep) RunRep();

  const Cycle start = machine.GlobalTime();
  std::uint64_t l3_start = 0;
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    l3_start += machine.stack(cpu).L3Misses();
  }
  const auto bus_start = machine.fabric().TotalCounts();

  for (int rep = 0; rep < params.reps; ++rep) RunRep();

  DaxpyResult result;
  result.cycles = machine.GlobalTime() - start;
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    result.l3_misses += machine.stack(cpu).L3Misses();
  }
  result.l3_misses -= l3_start;
  const auto bus_end = machine.fabric().TotalCounts();
  result.bus_memory = bus_end.bus_memory - bus_start.bus_memory;
  result.coherent_events =
      bus_end.CoherentEvents() - bus_start.CoherentEvents();
  result.snapshot = machine.registry().Take();

  // Functional verification over all reps (identical fma ordering on host).
  result.verified = true;
  const int total_reps = params.warmup_reps + params.reps;
  for (std::int64_t i = 0; i < n; ++i) {
    double expected = 2.0 - 0.001 * i;
    const double xi = 1.0 + 0.001 * i;
    for (int rep = 0; rep < total_reps; ++rep) {
      expected = __builtin_fma(a, xi, expected);
    }
    if (machine.memory().ReadDouble(y + 8 * static_cast<Addr>(i)) !=
        expected) {
      result.verified = false;
      break;
    }
  }
  return result;
}

}  // namespace cobra::bench
