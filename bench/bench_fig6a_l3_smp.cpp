// Figure 6(a): normalized L3 miss counts under COBRA's optimizations,
// 4 threads on the 4-way Itanium 2 SMP server. Coherent L2 write misses
// escalate to L3 misses, so removing unnecessary coherent traffic shows up
// directly in this counter.
#include "machine/machine.h"
#include "npb_experiment.h"

int main() {
  using namespace cobra;
  bench::PrintNpbFigure(
      "Figure 6(a): normalized L3 misses under COBRA, 4 threads, SMP",
      "Paper: noprefetch -16.3% on average (SP -29.9%, CG -39.5%); "
      "prefetch.excl +3.5% on average. Baseline = 1.0; lower is better.",
      machine::SmpServerConfig(4), /*threads=*/4, /*metric=*/1);
  return 0;
}
