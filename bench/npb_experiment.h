// Shared harness for the paper's main evaluation (Figures 5, 6, 7): each
// OpenMP NPB mini-benchmark runs three ways on a given machine —
//   * baseline: the icc-style aggressively-prefetching binary, untouched;
//   * COBRA/noprefetch: same binary, optimized at runtime;
//   * COBRA/prefetch.excl: same binary, exclusive-hint optimization —
// and reports wall cycles, total L3 misses, and system bus memory
// transactions, from which the per-figure binaries print their series.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cobra/cobra.h"
#include "machine/engine.h"
#include "machine/machine.h"
#include "support/simtypes.h"

namespace cobra::bench {

enum class NpbMode { kBaseline, kCobraNoprefetch, kCobraExcl };

const char* NpbModeName(NpbMode mode);

struct NpbRunResult {
  Cycle cycles = 0;
  std::uint64_t l3_misses = 0;
  std::uint64_t bus_memory = 0;
  std::uint64_t coherent_events = 0;
  bool verified = false;
  core::CobraRuntime::Stats cobra;
};

// Extra knobs for ablation studies (all defaults reproduce the paper runs).
struct NpbOptions {
  // Compile the binary without prefetches instead of attaching COBRA
  // ("blind" static noprefetch, the strawman COBRA's selectivity beats).
  bool static_noprefetch_binary = false;
  // Ablation hook applied to the COBRA configuration before attach.
  std::function<void(core::CobraConfig&)> tweak_config;
  // Host execution engine (results are bit-identical across engines);
  // honours COBRA_ENGINE, e.g. "parallel:4" or "serial@512".
  machine::EngineConfig engine = machine::EngineConfigFromEnv();
};

NpbRunResult RunNpbExperiment(const std::string& benchmark,
                              const machine::MachineConfig& machine_config,
                              int threads, NpbMode mode,
                              const NpbOptions& options = {});

// Prints one figure: per-benchmark series of `metric` for the two COBRA
// modes normalized to the baseline, plus the average row, in the paper's
// layout. `metric`: 0 = speedup, 1 = L3 misses, 2 = bus transactions.
void PrintNpbFigure(const char* title, const char* paper_reference,
                    const machine::MachineConfig& machine_config, int threads,
                    int metric);

}  // namespace cobra::bench
