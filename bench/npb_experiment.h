// Shared harness for the paper's main evaluation (Figures 5, 6, 7): each
// OpenMP NPB mini-benchmark runs three ways on a given machine —
//   * baseline: the icc-style aggressively-prefetching binary, untouched;
//   * COBRA/noprefetch: same binary, optimized at runtime;
//   * COBRA/prefetch.excl: same binary, exclusive-hint optimization —
// and reports wall cycles, total L3 misses, and system bus memory
// transactions, from which the per-figure binaries print their series.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cobra/cobra.h"
#include "machine/engine.h"
#include "machine/machine.h"
#include "obs/registry.h"
#include "perfmon/sample.h"
#include "support/simtypes.h"

namespace cobra::bench {

enum class NpbMode { kBaseline, kCobraNoprefetch, kCobraExcl };

const char* NpbModeName(NpbMode mode);

struct NpbRunResult {
  Cycle cycles = 0;
  std::uint64_t l3_misses = 0;
  std::uint64_t bus_memory = 0;
  std::uint64_t coherent_events = 0;
  // Invalidation traffic components (the Fig. 7a adaptive-vs-always-on
  // `.excl` comparison): ownership transactions on the fabric, and lines
  // other caches lost to them.
  std::uint64_t bus_upgrades = 0;
  std::uint64_t bus_rd_inval_all_hitm = 0;
  std::uint64_t snoop_invalidations = 0;
  // Protocol-contrast traffic (the protocol_matrix experiment): Dragon
  // update broadcasts, cache-to-cache supplies (dirty everywhere; also
  // clean under MESIF), and dirty-victim writebacks.
  std::uint64_t bus_updates = 0;
  std::uint64_t c2c_transfers = 0;
  std::uint64_t bus_writebacks = 0;
  std::uint64_t remote_transactions = 0;
  std::uint64_t prefetch_bus_requests = 0;
  bool verified = false;
  core::CobraRuntime::Stats cobra;
  // Full observability-registry snapshot at the end of the run (every
  // cpuN.*, mem.*, bus.*, engine.*, perfmon.*, cobra.* metric).
  obs::Snapshot snapshot;
  // Sampled-mode bookkeeping (NpbOptions::sample enabled): phase counts,
  // checkpoint round-trips, detailed-instruction fraction. When sampled,
  // `cycles` and the traffic counters above are the SimPoint-style
  // projections, not direct measurements.
  bool sampled = false;
  perfmon::SampleOutcome sample;
};

// Extra knobs for ablation studies (all defaults reproduce the paper runs).
struct NpbOptions {
  // Compile the binary without prefetches instead of attaching COBRA
  // ("blind" static noprefetch, the strawman COBRA's selectivity beats).
  bool static_noprefetch_binary = false;
  // Compile every lfetch as lfetch.excl (always-on exclusive hints, the
  // non-adaptive strawman of Fig. 7a). Mutually exclusive with the above.
  bool static_excl_binary = false;
  // Ablation hook applied to the COBRA configuration before attach.
  std::function<void(core::CobraConfig&)> tweak_config;
  // Host execution engine (results are bit-identical across engines);
  // honours COBRA_ENGINE, e.g. "parallel:4" or "serial@512".
  machine::EngineConfig engine = machine::EngineConfigFromEnv();
  // Sampled simulation (perfmon/sample.h): when enabled, the benchmark runs
  // twice — a fast-forward BBV profiling pass, then a sampled pass that
  // warms each representative interval from a checkpoint round-trip and
  // simulates only those in detail. Result counters are projections.
  perfmon::SampleConfig sample;
};

NpbRunResult RunNpbExperiment(const std::string& benchmark,
                              const machine::MachineConfig& machine_config,
                              int threads, NpbMode mode,
                              const NpbOptions& options = {});

}  // namespace cobra::bench
