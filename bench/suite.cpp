#include "suite.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "cobra/cobra.h"
#include "daxpy_experiment.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "mem/protocol.h"
#include "npb/common.h"
#include "npb_experiment.h"
#include "obs/trace.h"
#include "perfmon/sample.h"
#include "rt/team.h"
#include "support/check.h"

namespace cobra::bench {
namespace {

using support::Json;

std::string FingerprintHex(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fp);
  return buf;
}

// The per-row counter dump: every registry metric as {name, value}. An
// array of uniform objects keeps the document schema independent of the
// machine's CPU count (4-way SMP and 8-way NUMA rows have different metric
// *lists* but the same shape).
Json SnapshotCounters(const obs::Snapshot& snapshot) {
  Json counters = Json::Array();
  for (const obs::Metric& m : snapshot.metrics) {
    // Host-class readings are nondeterministic; they are reported once per
    // experiment in the "host" object, never in the counter dumps that
    // reports are diffed by.
    if (m.host) continue;
    Json entry = Json::Object();
    entry.Set("name", m.name);
    entry.Set("value", m.value);
    counters.Append(std::move(entry));
  }
  return counters;
}

// The per-experiment "host" object: how fast the host simulated, measured
// process-wide around the experiment body. Every value here varies run to
// run; report-comparison tools must ignore the whole object (cobra_bench
// --compare does).
Json HostPerfJson(const machine::HostPerf& before,
                  const machine::HostPerf& after, double wall_seconds) {
  const std::uint64_t sim_cycles = after.sim_cycles - before.sim_cycles;
  const std::uint64_t retired = after.retired - before.retired;
  const std::uint64_t sb_retired = after.sb_retired - before.sb_retired;
  Json host = Json::Object();
  host.Set("wall_seconds", wall_seconds);
  host.Set("engine_runs", after.runs - before.runs);
  host.Set("sim_cycles", sim_cycles);
  host.Set("retired_insts", retired);
  // Instructions retired inside the trace-JIT's superblock executor (0 with
  // COBRA_TJIT=off), and the share of all retired instructions that ran
  // there — the JIT coverage this experiment achieved.
  host.Set("sb_retired_insts", sb_retired);
  host.Set("sb_share",
           retired > 0 ? static_cast<double>(sb_retired) /
                             static_cast<double>(retired)
                       : 0.0);
  host.Set("sim_cycles_per_host_second",
           wall_seconds > 0.0 ? static_cast<double>(sim_cycles) / wall_seconds
                              : 0.0);
  host.Set("sim_mips", wall_seconds > 0.0
                           ? static_cast<double>(retired) / wall_seconds / 1e6
                           : 0.0);
  return host;
}

Json BeginExperiment(const char* name, const char* figure,
                     const char* description, const char* machine,
                     int threads) {
  Json e = Json::Object();
  e.Set("name", name);
  e.Set("figure", figure);
  e.Set("description", description);
  e.Set("machine", machine);
  e.Set("threads", threads);
  return e;
}

double Speedup(const NpbRunResult& base, const NpbRunResult& opt) {
  return static_cast<double>(base.cycles) / static_cast<double>(opt.cycles);
}

double Ratio(std::uint64_t opt, std::uint64_t base) {
  return base == 0 ? 0.0
                   : static_cast<double>(opt) / static_cast<double>(base);
}

// The sampled-run schedule for --sample NPB matrices: COBRA_SAMPLE when
// set, otherwise an interval sized for the class-S instruction counts.
perfmon::SampleConfig MatrixSampleConfig() {
  perfmon::SampleConfig config = perfmon::SampleConfigFromEnv();
  if (!config.enabled()) {
    config.interval_insts = 100000;
    config.max_phases = 8;
  }
  return config;
}

// --- Table 1: static loop / prefetch statistics ----------------------------

constexpr const char* kDescTable1 =
    "lfetch / br.ctop / br.cloop / br.wtop counts per compiler-generated "
    "OpenMP NPB binary";

Json RunTable1(const SuiteOptions&) {
  Json e = BeginExperiment("table1_static_stats", "Table 1", kDescTable1,
                           "none", 0);
  Json rows = Json::Array();
  std::uint64_t lfetch_total = 0;
  for (const std::string& name : npb::SuiteNames()) {
    auto benchmark = npb::MakeBenchmark(name);
    kgen::Program prog;
    benchmark->Build(prog, kgen::PrefetchPolicy{});
    const kgen::StaticStats stats = prog.CountStatic();
    lfetch_total += stats.lfetch;
    Json row = Json::Object();
    row.Set("benchmark", name);
    row.Set("lfetch", stats.lfetch);
    row.Set("br_ctop", stats.br_ctop);
    row.Set("br_cloop", stats.br_cloop);
    row.Set("br_wtop", stats.br_wtop);
    rows.Append(std::move(row));
  }
  e.Set("rows", std::move(rows));
  Json derived = Json::Object();
  derived.Set("lfetch_total", lfetch_total);
  e.Set("derived", std::move(derived));
  return e;
}

// --- Figure 2: DAXPY codegen shape -----------------------------------------

constexpr const char* kDescFig2 =
    "structural properties of the generated DAXPY assembly (6 prologue "
    "lfetches + 1 rotating steady-state lfetch, br.ctop loop)";

Json RunFig2(const SuiteOptions&) {
  Json e = BeginExperiment("fig2_codegen", "Figure 2", kDescFig2, "none", 0);
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  const kgen::StaticStats stats = prog.CountStatic();
  const bool back_branch_is_ctop =
      prog.image().Fetch(daxpy.back_branch_pc).op == isa::Opcode::kBrCtop;

  Json rows = Json::Array();
  auto AddProp = [&rows](const char* property, std::uint64_t value) {
    Json row = Json::Object();
    row.Set("property", property);
    row.Set("value", value);
    rows.Append(std::move(row));
  };
  AddProp("steady_state_lfetch_pcs", daxpy.lfetch_pcs.size());
  AddProp("static_lfetch", stats.lfetch);
  AddProp("br_ctop", stats.br_ctop);
  AddProp("back_branch_is_ctop", back_branch_is_ctop ? 1 : 0);
  e.Set("rows", std::move(rows));

  Json derived = Json::Object();
  derived.Set("shape_ok", daxpy.lfetch_pcs.size() == 1 && stats.lfetch == 7 &&
                              stats.br_ctop == 1 && back_branch_is_ctop);
  e.Set("derived", std::move(derived));
  return e;
}

// --- Figure 3: DAXPY working-set / thread-count sweep ----------------------

constexpr const char* kDescFig3 =
    "normalized DAXPY execution time, prefetch vs noprefetch vs "
    "prefetch.excl, per working set (1-thread prefetch = 1)";

Json RunFig3(const SuiteOptions& options) {
  Json e = BeginExperiment("fig3_daxpy", "Figure 3", kDescFig3, "smp4", 4);
  const std::size_t working_sets_full[] = {128 * 1024, 512 * 1024,
                                           2 * 1024 * 1024};
  const std::size_t working_sets_quick[] = {128 * 1024};
  const std::size_t* working_sets =
      options.quick ? working_sets_quick : working_sets_full;
  const std::size_t num_ws = options.quick ? 1 : 3;
  const DaxpyVariant variants[] = {DaxpyVariant::kPrefetch,
                                   DaxpyVariant::kNoprefetch,
                                   DaxpyVariant::kExcl};

  Json rows = Json::Array();
  double noprefetch_vs_prefetch_4t = 0.0;
  double excl_vs_prefetch_4t = 0.0;
  for (std::size_t w = 0; w < num_ws; ++w) {
    const std::size_t ws = working_sets[w];
    double baseline = 0.0;
    double prefetch_4t = 0.0;
    for (const int threads : {1, 2, 4}) {
      for (const DaxpyVariant variant : variants) {
        DaxpyParams params;
        params.threads = threads;
        params.working_set_bytes = ws;
        params.variant = variant;
        params.engine = options.engine;
        if (options.quick) {
          params.reps = 16;
          params.warmup_reps = 2;
        }
        const DaxpyResult r = RunDaxpyExperiment(params);
        const double cycles = static_cast<double>(r.cycles);
        if (baseline == 0.0) baseline = cycles;  // (1 thread, prefetch)
        if (threads == 4 && variant == DaxpyVariant::kPrefetch) {
          prefetch_4t = cycles;
        }
        // Only the first (smallest) working set feeds the headline derived
        // numbers — the paper's 128K column is where noprefetch wins.
        if (w == 0 && threads == 4 && prefetch_4t > 0.0) {
          if (variant == DaxpyVariant::kNoprefetch) {
            noprefetch_vs_prefetch_4t = prefetch_4t / cycles;
          } else if (variant == DaxpyVariant::kExcl) {
            excl_vs_prefetch_4t = prefetch_4t / cycles;
          }
        }
        Json row = Json::Object();
        row.Set("working_set_kib", ws / 1024);
        row.Set("threads", threads);
        row.Set("variant", DaxpyVariantName(variant));
        row.Set("cycles", static_cast<std::uint64_t>(r.cycles));
        row.Set("normalized", cycles / baseline);
        row.Set("l3_misses", r.l3_misses);
        row.Set("bus_memory", r.bus_memory);
        row.Set("verified", r.verified);
        rows.Append(std::move(row));
      }
    }
  }
  e.Set("rows", std::move(rows));
  Json derived = Json::Object();
  derived.Set("noprefetch_speedup_4t_128k", noprefetch_vs_prefetch_4t);
  derived.Set("excl_speedup_4t_128k", excl_vs_prefetch_4t);
  e.Set("derived", std::move(derived));
  return e;
}

// --- Figures 5/6/7: the NPB matrix on each machine -------------------------

// One benchmark × mode grid per machine covers three paper figures at once:
// speedup (Fig. 5), L3 misses (Fig. 6) and bus/invalidation traffic
// (Fig. 7). The fourth mode — the always-on `.excl` binary — is the
// non-adaptive strawman COBRA's measured epochs beat in Fig. 7(a).
struct NpbModeSpec {
  const char* name;
  NpbMode mode;
  bool static_excl;
};

constexpr NpbModeSpec kNpbModes[] = {
    {"prefetch", NpbMode::kBaseline, false},
    {"noprefetch", NpbMode::kCobraNoprefetch, false},
    {"prefetch.excl", NpbMode::kCobraExcl, false},
    {"static.excl", NpbMode::kBaseline, true},
};

Json NpbRow(const std::string& benchmark, const char* mode_name,
            const NpbRunResult& r, const NpbRunResult& base) {
  Json row = Json::Object();
  row.Set("benchmark", benchmark);
  row.Set("mode", mode_name);
  row.Set("cycles", static_cast<std::uint64_t>(r.cycles));
  row.Set("speedup", Speedup(base, r));
  row.Set("l3_misses", r.l3_misses);
  const std::uint64_t demand =
      r.l3_misses >= r.prefetch_bus_requests
          ? r.l3_misses - r.prefetch_bus_requests
          : 0;
  row.Set("demand_l3_misses", demand);
  row.Set("bus_memory", r.bus_memory);
  row.Set("coherent_events", r.coherent_events);
  row.Set("bus_upgrades", r.bus_upgrades);
  row.Set("bus_rd_inval_all_hitm", r.bus_rd_inval_all_hitm);
  row.Set("invalidation_traffic", r.bus_upgrades + r.bus_rd_inval_all_hitm);
  row.Set("snoop_invalidations", r.snoop_invalidations);
  row.Set("remote_transactions", r.remote_transactions);
  row.Set("prefetch_bus_requests", r.prefetch_bus_requests);
  row.Set("verified", r.verified);
  Json cobra = Json::Object();
  cobra.Set("evaluations", r.cobra.evaluations);
  cobra.Set("deployments", r.cobra.deployments);
  cobra.Set("rollbacks", r.cobra.rollbacks);
  cobra.Set("epochs_kept", r.cobra.epochs_kept);
  cobra.Set("epochs_reverted", r.cobra.epochs_reverted);
  cobra.Set("strategy_switches", r.cobra.strategy_switches);
  cobra.Set("phase_changes", r.cobra.phase_changes);
  cobra.Set("lfetches_rewritten", r.cobra.lfetches_rewritten);
  cobra.Set("prefetches_inserted", r.cobra.prefetches_inserted);
  cobra.Set("patch_verifications", r.cobra.patch_verifications);
  row.Set("cobra", std::move(cobra));
  // Sampled-run bookkeeping, present (zeroed) on full runs too so the
  // report schema does not depend on --sample.
  row.Set("sampled", r.sampled);
  Json sample = Json::Object();
  sample.Set("intervals", r.sample.intervals);
  sample.Set("phases", r.sample.phases);
  sample.Set("detailed_intervals", r.sample.detailed_intervals);
  sample.Set("checkpoints", r.sample.checkpoints);
  sample.Set("checkpoint_bytes", r.sample.checkpoint_bytes);
  sample.Set("detailed_fraction", r.sample.detailed_fraction);
  row.Set("sample", std::move(sample));
  row.Set("registry_fingerprint", FingerprintHex(r.snapshot.Fingerprint()));
  row.Set("counters", SnapshotCounters(r.snapshot));
  return row;
}

constexpr const char* kDescNpbSmp =
    "OpenMP NPB (class S) under COBRA on the 4-way SMP server: speedup, L3 "
    "misses and bus/invalidation traffic per benchmark and optimization "
    "mode";
constexpr const char* kDescNpbNuma =
    "OpenMP NPB (class S) under COBRA on the 8-way cc-NUMA system: speedup, "
    "L3 misses and bus/invalidation traffic per benchmark and optimization "
    "mode";

Json RunNpbMatrix(const SuiteOptions& options, bool numa) {
  const char* name = numa ? "npb_numa" : "npb_smp";
  const char* figure = numa ? "Figures 5b, 6b, 7b" : "Figures 5a, 6a, 7a";
  const auto machine =
      numa ? machine::AltixConfig(8) : machine::SmpServerConfig(4);
  const int threads = numa ? 8 : 4;
  Json e = BeginExperiment(name, figure, numa ? kDescNpbNuma : kDescNpbSmp,
                           numa ? "numa8" : "smp4", threads);

  const std::vector<std::string> benchmarks =
      options.quick ? std::vector<std::string>{"lu", "mg", "cg"}
                    : npb::ResultBenchmarkNames();

  Json rows = Json::Array();
  // Per-mode accumulators for the derived averages/totals (skipping the
  // baseline, whose ratios are 1 by definition).
  double speedup_sum[4] = {};
  double l3_ratio_sum[4] = {};
  double bus_ratio_sum[4] = {};
  std::uint64_t invalidations_total[4] = {};
  std::uint64_t snoop_invalidations_total[4] = {};
  for (const std::string& benchmark : benchmarks) {
    if (options.echo) {
      std::fprintf(stderr, "[cobra_bench]   %s %s\n", name, benchmark.c_str());
    }
    NpbRunResult base;
    for (int m = 0; m < 4; ++m) {
      const NpbModeSpec& spec = kNpbModes[m];
      NpbOptions npb_options;
      npb_options.engine = options.engine;
      npb_options.static_excl_binary = spec.static_excl;
      if (options.sample) {
        npb_options.sample = MatrixSampleConfig();
        // Class-S runs retire a few million instructions; at the default
        // epoch cadence COBRA would still be baselining when the sampled
        // run's short detailed bursts end. Converge early instead (the
        // sampled_accuracy experiment applies the same cadence to both
        // run styles and pins the resulting error).
        npb_options.tweak_config = [](core::CobraConfig& config) {
          config.batches_per_evaluation = 1;
          config.epoch_windows = 2;
          config.max_settle_windows = 3;
        };
      }
      const NpbRunResult r =
          RunNpbExperiment(benchmark, machine, threads, spec.mode, npb_options);
      if (m == 0) base = r;
      speedup_sum[m] += Speedup(base, r);
      l3_ratio_sum[m] += Ratio(r.l3_misses, base.l3_misses);
      bus_ratio_sum[m] += Ratio(r.bus_memory, base.bus_memory);
      invalidations_total[m] += r.bus_upgrades + r.bus_rd_inval_all_hitm;
      snoop_invalidations_total[m] += r.snoop_invalidations;
      rows.Append(NpbRow(benchmark, spec.name, r, base));
    }
  }
  e.Set("rows", std::move(rows));

  const double n = static_cast<double>(benchmarks.size());
  Json derived = Json::Object();
  derived.Set("benchmarks", static_cast<std::uint64_t>(benchmarks.size()));
  derived.Set("speedup_noprefetch_avg", speedup_sum[1] / n);
  derived.Set("speedup_excl_avg", speedup_sum[2] / n);
  derived.Set("speedup_static_excl_avg", speedup_sum[3] / n);
  derived.Set("l3_ratio_noprefetch_avg", l3_ratio_sum[1] / n);
  derived.Set("l3_ratio_excl_avg", l3_ratio_sum[2] / n);
  derived.Set("bus_ratio_noprefetch_avg", bus_ratio_sum[1] / n);
  derived.Set("bus_ratio_excl_avg", bus_ratio_sum[2] / n);
  derived.Set("invalidations_cobra_excl_total", invalidations_total[2]);
  derived.Set("invalidations_static_excl_total", invalidations_total[3]);
  derived.Set("snoop_invalidations_cobra_excl_total",
              snoop_invalidations_total[2]);
  derived.Set("snoop_invalidations_static_excl_total",
              snoop_invalidations_total[3]);
  e.Set("derived", std::move(derived));
  return e;
}

Json RunNpbSmp(const SuiteOptions& options) {
  return RunNpbMatrix(options, /*numa=*/false);
}
Json RunNpbNuma(const SuiteOptions& options) {
  return RunNpbMatrix(options, /*numa=*/true);
}

// --- Coherence-protocol matrix (DESIGN.md §Coherence protocols) ------------

constexpr const char* kDescProtocolMatrix =
    "sharing-heavy NPB kernels under each coherence protocol "
    "(MESI/MOESI/Dragon/MESIF), static.excl binary vs adaptive COBRA: "
    "cycles plus invalidation / update / cache-to-cache / writeback "
    "traffic";

Json RunProtocolMatrix(const SuiteOptions& options) {
  Json e = BeginExperiment("protocol_matrix", "DESIGN.md, Coherence protocols",
                           kDescProtocolMatrix, "smp4", 4);
  const std::vector<std::string> benchmarks =
      options.quick ? std::vector<std::string>{"cg"}
                    : std::vector<std::string>{"cg", "mg", "ft"};
  static constexpr mem::Protocol kProtocols[] = {
      mem::Protocol::kMesi, mem::Protocol::kMoesi, mem::Protocol::kDragon,
      mem::Protocol::kMesif};
  struct ModeSpec {
    const char* name;
    bool static_excl;
  };
  static constexpr ModeSpec kModes[] = {{"static.excl", true},
                                        {"adaptive", false}};

  Json rows = Json::Array();
  // Per-protocol totals across benchmarks and modes, for the trend
  // assertions (Dragon: updates, zero invalidations; MESIF: clean c2c).
  std::uint64_t invalidations[4] = {};
  std::uint64_t snoop_invalidations[4] = {};
  std::uint64_t updates[4] = {};
  std::uint64_t c2c[4] = {};
  std::uint64_t writebacks[4] = {};
  std::uint64_t cycles[4] = {};
  for (const std::string& benchmark : benchmarks) {
    for (int pi = 0; pi < 4; ++pi) {
      machine::MachineConfig machine = machine::SmpServerConfig(4);
      machine.mem.protocol = kProtocols[pi];
      if (options.echo) {
        std::fprintf(stderr, "[cobra_bench]   protocol_matrix %s %s\n",
                     benchmark.c_str(),
                     mem::ProtocolName(kProtocols[pi]));
      }
      for (const ModeSpec& mode : kModes) {
        NpbOptions npb_options;
        npb_options.engine = options.engine;
        npb_options.static_excl_binary = mode.static_excl;
        const NpbRunResult r = RunNpbExperiment(
            benchmark, machine, 4,
            mode.static_excl ? NpbMode::kBaseline : NpbMode::kCobraExcl,
            npb_options);
        const std::uint64_t inval = r.bus_upgrades + r.bus_rd_inval_all_hitm;
        invalidations[pi] += inval;
        snoop_invalidations[pi] += r.snoop_invalidations;
        updates[pi] += r.bus_updates;
        c2c[pi] += r.c2c_transfers;
        writebacks[pi] += r.bus_writebacks;
        cycles[pi] += r.cycles;
        Json row = Json::Object();
        row.Set("benchmark", benchmark);
        row.Set("protocol", mem::ProtocolName(kProtocols[pi]));
        row.Set("mode", mode.name);
        row.Set("cycles", r.cycles);
        row.Set("l3_misses", r.l3_misses);
        row.Set("bus_memory", r.bus_memory);
        row.Set("invalidations", inval);
        row.Set("snoop_invalidations", r.snoop_invalidations);
        row.Set("updates", r.bus_updates);
        row.Set("c2c_transfers", r.c2c_transfers);
        row.Set("writebacks", r.bus_writebacks);
        rows.Append(std::move(row));
      }
    }
  }
  e.Set("rows", std::move(rows));

  Json derived = Json::Object();
  derived.Set("benchmarks", static_cast<std::uint64_t>(benchmarks.size()));
  for (int pi = 0; pi < 4; ++pi) {
    const std::string p = mem::ProtocolName(kProtocols[pi]);
    derived.Set(p + "_invalidations_total", invalidations[pi]);
    derived.Set(p + "_snoop_invalidations_total", snoop_invalidations[pi]);
    derived.Set(p + "_updates_total", updates[pi]);
    derived.Set(p + "_c2c_total", c2c[pi]);
    derived.Set(p + "_writebacks_total", writebacks[pi]);
    derived.Set(p + "_cycles_total", cycles[pi]);
  }
  e.Set("derived", std::move(derived));
  return e;
}

// --- Ablations (DESIGN.md §4) ----------------------------------------------

constexpr const char* kDescAblations =
    "COBRA design-choice ablations: selection filters, measured epochs, "
    "blind static noprefetch, monitoring overhead";

Json RunAblations(const SuiteOptions& options) {
  Json e = BeginExperiment("ablations", "DESIGN.md §4", kDescAblations,
                           "smp4", 4);
  const auto machine = machine::SmpServerConfig(4);
  const int threads = 4;
  const std::vector<std::string> benchmarks =
      options.quick ? std::vector<std::string>{"cg"}
                    : std::vector<std::string>{"ft", "mg", "cg"};

  Json rows = Json::Array();
  auto AddRow = [&rows](const std::string& benchmark,
                        const std::string& configuration, double speedup,
                        std::uint64_t deployments, std::uint64_t rollbacks) {
    Json row = Json::Object();
    row.Set("benchmark", benchmark);
    row.Set("configuration", configuration);
    row.Set("speedup", speedup);
    row.Set("deployments", deployments);
    row.Set("rollbacks", rollbacks);
    rows.Append(std::move(row));
  };

  for (const std::string& benchmark : benchmarks) {
    if (options.echo) {
      std::fprintf(stderr, "[cobra_bench]   ablations %s\n",
                   benchmark.c_str());
    }
    NpbOptions base_options;
    base_options.engine = options.engine;
    const auto base = RunNpbExperiment(benchmark, machine, threads,
                                       NpbMode::kBaseline, base_options);
    auto Cobra = [&](const char* configuration, NpbOptions npb_options) {
      npb_options.engine = options.engine;
      const auto r = RunNpbExperiment(benchmark, machine, threads,
                                      NpbMode::kCobraNoprefetch, npb_options);
      AddRow(benchmark, configuration, Speedup(base, r), r.cobra.deployments,
             r.cobra.rollbacks);
    };
    Cobra("full", NpbOptions{});
    {
      NpbOptions o;
      o.tweak_config = [](core::CobraConfig& cfg) {
        cfg.require_coherent_load_in_loop = false;
        cfg.require_coherent_ratio = false;
      };
      Cobra("A1_filters_off", std::move(o));
    }
    {
      NpbOptions o;
      o.static_noprefetch_binary = true;
      o.engine = options.engine;
      const auto r = RunNpbExperiment(benchmark, machine, threads,
                                      NpbMode::kBaseline, o);
      AddRow(benchmark, "A2_blind_static_noprefetch", Speedup(base, r), 0, 0);
    }
    {
      NpbOptions o;
      o.tweak_config = [](core::CobraConfig& cfg) {
        cfg.measured_epochs = false;
      };
      Cobra("A3_measured_epochs_off", std::move(o));
    }
    for (const Cycle overhead : {Cycle{500}, Cycle{4000}}) {
      NpbOptions o;
      o.tweak_config = [overhead](core::CobraConfig& cfg) {
        cfg.monitor_overhead_cycles = overhead;
      };
      Cobra(("A4_overhead_" + std::to_string(overhead)).c_str(),
            std::move(o));
    }
  }
  e.Set("rows", std::move(rows));
  Json derived = Json::Object();
  derived.Set("benchmarks", static_cast<std::uint64_t>(benchmarks.size()));
  e.Set("derived", std::move(derived));
  return e;
}

// --- ADORE-style runtime prefetch insertion (extension) --------------------

struct InsertionRun {
  Cycle cycles = 0;
  std::uint64_t l3_misses = 0;
  std::uint64_t prefetch_bus_requests = 0;
  std::uint64_t prefetches_inserted = 0;
};

InsertionRun RunInsertionOnce(bool static_prefetch, bool with_cobra,
                              int threads, int reps,
                              const machine::EngineConfig& engine) {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy",
                static_prefetch ? kgen::PrefetchPolicy{}
                                : kgen::PrefetchPolicy::None());
  constexpr std::int64_t kN = 262144;  // 4 MB working set: memory-bound
  const mem::Addr x = prog.Alloc(kN * 8);
  const mem::Addr y = prog.Alloc(kN * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(threads);
  cfg.mem.memory_bytes = 1 << 26;
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<mem::Addr>(i), 2.0);
  }

  std::unique_ptr<core::CobraRuntime> cobra;
  if (with_cobra) {
    core::CobraConfig config;
    config.strategy = core::OptKind::kInsertPrefetch;
    cobra = std::make_unique<core::CobraRuntime>(&machine, config);
    cobra->AttachAll(threads);
  }

  rt::Team team(&machine, threads, engine);
  const Cycle start = machine.GlobalTime();
  for (int rep = 0; rep < reps; ++rep) {
    team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, threads, kN);
      regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 0.5);
    });
  }
  InsertionRun run;
  run.cycles = machine.GlobalTime() - start;
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    run.l3_misses += machine.stack(cpu).L3Misses();
    run.prefetch_bus_requests +=
        machine.stack(cpu).stats().prefetch_bus_requests;
  }
  if (cobra) run.prefetches_inserted = cobra->stats().prefetches_inserted;
  return run;
}

constexpr const char* kDescInsertion =
    "ADORE-style runtime prefetch insertion into a conservatively "
    "compiled (noprefetch) memory-bound DAXPY";

Json RunInsertion(const SuiteOptions& options) {
  Json e = BeginExperiment("adore_insertion", "extension", kDescInsertion,
                           "smp", 0);
  const std::vector<int> thread_counts =
      options.quick ? std::vector<int>{2} : std::vector<int>{1, 2};
  const int reps = options.quick ? 8 : 12;

  Json rows = Json::Array();
  auto DemandL3 = [](const InsertionRun& run) {
    return run.l3_misses >= run.prefetch_bus_requests
               ? run.l3_misses - run.prefetch_bus_requests
               : 0;
  };
  double speedup_inserted_vs_bare = 0.0;
  double demand_l3_inserted_over_bare = 0.0;
  for (const int threads : thread_counts) {
    if (options.echo) {
      std::fprintf(stderr, "[cobra_bench]   adore_insertion %dt\n", threads);
    }
    const InsertionRun bare =
        RunInsertionOnce(false, false, threads, reps, options.engine);
    const InsertionRun inserted =
        RunInsertionOnce(false, true, threads, reps, options.engine);
    const InsertionRun compiled =
        RunInsertionOnce(true, false, threads, reps, options.engine);
    auto AddRow = [&](const char* config, const InsertionRun& run) {
      Json row = Json::Object();
      row.Set("threads", threads);
      row.Set("config", config);
      row.Set("cycles", static_cast<std::uint64_t>(run.cycles));
      row.Set("vs_bare", static_cast<double>(run.cycles) /
                             static_cast<double>(bare.cycles));
      row.Set("l3_misses", run.l3_misses);
      row.Set("demand_l3_misses", DemandL3(run));
      row.Set("prefetches_inserted", run.prefetches_inserted);
      rows.Append(std::move(row));
    };
    AddRow("bare", bare);
    AddRow("cobra.insertion", inserted);
    AddRow("static.prefetch", compiled);
    // The last (largest) thread count feeds the headline derived numbers.
    speedup_inserted_vs_bare = static_cast<double>(bare.cycles) /
                               static_cast<double>(inserted.cycles);
    demand_l3_inserted_over_bare =
        Ratio(DemandL3(inserted), DemandL3(bare));
  }
  e.Set("rows", std::move(rows));
  Json derived = Json::Object();
  derived.Set("speedup_inserted_vs_bare", speedup_inserted_vs_bare);
  derived.Set("demand_l3_inserted_over_bare", demand_l3_inserted_over_bare);
  e.Set("derived", std::move(derived));
  return e;
}

// --- Static-priors ablation (scalar-evolution priors) ----------------------

struct PriorsRun {
  Cycle cycles = 0;
  core::CobraRuntime::Stats stats;
};

PriorsRun RunStaticPriorsOnce(bool priors, int reps,
                              const machine::EngineConfig& engine) {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy::None());
  constexpr std::int64_t kN = 262144;  // 4 MB working set: memory-bound
  const mem::Addr x = prog.Alloc(kN * 8);
  const mem::Addr y = prog.Alloc(kN * 8);
  machine::MachineConfig cfg = machine::SmpServerConfig(1);
  cfg.mem.memory_bytes = 1 << 26;
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<mem::Addr>(i), 2.0);
  }

  // Eager wake windows make stride *confirmation* the qualification
  // bottleneck; a sampling period coprime to the loop body length rotates
  // the wake phase through the loop (a commensurate period parks every
  // wake on the same mid-bundle pc and the quiesce check starves); a deep
  // confirmation requirement makes the dynamic-only run watch the stream
  // repeat for several windows before it trusts the stride.
  core::CobraConfig config;
  config.strategy = core::OptKind::kInsertPrefetch;
  config.measured_epochs = false;
  config.batch_size = 1;
  config.batches_per_evaluation = 1;
  config.min_loop_hits = 1;
  config.sampling_period_insts = 1999;
  config.stride_confirmations = 8;
  config.static_priors = priors;
  core::CobraRuntime cobra(&machine, config);
  cobra.AttachAll(1);

  rt::Team team(&machine, 1, engine);
  const Cycle start = machine.GlobalTime();
  for (int rep = 0; rep < reps; ++rep) {
    team.Run(daxpy.entry, [&](int, cpu::RegisterFile& regs) {
      regs.WriteGr(14, x);
      regs.WriteGr(15, y);
      regs.WriteGr(16, static_cast<std::uint64_t>(kN));
      regs.WriteFr(6, 0.5);
    });
  }
  PriorsRun run;
  run.cycles = machine.GlobalTime() - start;
  run.stats = cobra.stats();
  return run;
}

constexpr const char* kDescStaticPriors =
    "scalar-evolution static priors: cycles until the first trace goes "
    "live on a noprefetch DAXPY — dynamic-only stride profiling vs "
    "profile-confirmed static chrecs";

Json RunStaticPriors(const SuiteOptions& options) {
  Json e = BeginExperiment("static_priors", "extension", kDescStaticPriors,
                           "smp1", 1);
  const int reps = options.quick ? 8 : 12;
  Json rows = Json::Array();
  std::uint64_t first_deploy[2] = {};
  std::uint64_t prior_hits_on = 0;
  for (const bool priors : {false, true}) {
    if (options.echo) {
      std::fprintf(stderr, "[cobra_bench]   static_priors %s\n",
                   priors ? "on" : "off");
    }
    const PriorsRun r = RunStaticPriorsOnce(priors, reps, options.engine);
    first_deploy[priors ? 1 : 0] = r.stats.first_deploy_cycles;
    if (priors) prior_hits_on = r.stats.prior_hits;
    Json row = Json::Object();
    row.Set("configuration",
            priors ? "static_priors.on" : "static_priors.off");
    row.Set("cycles", static_cast<std::uint64_t>(r.cycles));
    row.Set("first_deploy_cycles", r.stats.first_deploy_cycles);
    row.Set("deployments", r.stats.deployments);
    row.Set("prefetches_inserted", r.stats.prefetches_inserted);
    row.Set("scev_loops_analyzed", r.stats.scev_loops_analyzed);
    row.Set("scev_loops_solved", r.stats.scev_loops_solved);
    row.Set("prior_hits", r.stats.prior_hits);
    row.Set("prior_mismatches", r.stats.prior_mismatches);
    row.Set("invariant_suppressed", r.stats.invariant_suppressed);
    rows.Append(std::move(row));
  }
  e.Set("rows", std::move(rows));
  Json derived = Json::Object();
  derived.Set("first_deploy_off", first_deploy[0]);
  derived.Set("first_deploy_on", first_deploy[1]);
  derived.Set("first_deploy_on_over_off",
              Ratio(first_deploy[1], first_deploy[0]));
  derived.Set("prior_hits", prior_hits_on);
  e.Set("derived", std::move(derived));
  return e;
}

// --- Cost-model planner ablation (DESIGN.md §9) ----------------------------

struct PlannerRun {
  Cycle cycles = 0;
  core::CobraRuntime::Stats stats;
  core::PlannerStats planner;
};

// One planner-ablation run: the prefetching DAXPY pathology (coherent
// misses from prefetch streams crossing chunk boundaries into neighbours'
// write regions) on `cfg`, under an attached runtime. `segments` is the
// phase schedule: each entry names the kernel (0 = A, 1 = B) one rep
// executes; single-kernel workloads pass all-zero schedules. Both planner
// kinds run the *same* config apart from `kind` itself.
PlannerRun RunPlannerOnce(core::PlannerKind kind, machine::MachineConfig cfg,
                          int threads, std::int64_t n,
                          const std::vector<int>& segments,
                          core::CobraConfig config,
                          const machine::EngineConfig& engine) {
  kgen::Program prog;
  const kgen::LoopInfo kernel_a =
      EmitDaxpy(prog, "daxpy_a", kgen::PrefetchPolicy{});
  const kgen::LoopInfo kernel_b =
      EmitDaxpy(prog, "daxpy_b", kgen::PrefetchPolicy{});
  const mem::Addr xa = prog.Alloc(n * 8);
  const mem::Addr ya = prog.Alloc(n * 8);
  const mem::Addr xb = prog.Alloc(n * 8);
  const mem::Addr yb = prog.Alloc(n * 8);
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < n; ++i) {
    for (const mem::Addr base : {xa, xb}) {
      machine.memory().WriteDouble(base + 8 * static_cast<mem::Addr>(i), 1.0);
    }
    for (const mem::Addr base : {ya, yb}) {
      machine.memory().WriteDouble(base + 8 * static_cast<mem::Addr>(i), 2.0);
    }
  }

  config.planner = kind;  // the one knob the pair differs in
  core::CobraRuntime cobra(&machine, config);
  cobra.AttachAll(threads);

  rt::Team team(&machine, threads, engine);
  const Cycle start = machine.GlobalTime();
  for (const int segment : segments) {
    const kgen::LoopInfo& kernel = segment == 0 ? kernel_a : kernel_b;
    const mem::Addr x = segment == 0 ? xa : xb;
    const mem::Addr y = segment == 0 ? ya : yb;
    team.Run(kernel.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, threads, n);
      regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 0.5);
    });
  }
  PlannerRun run;
  run.cycles = machine.GlobalTime() - start;
  run.stats = cobra.stats();
  run.planner = cobra.planner().stats();
  return run;
}

constexpr const char* kDescPlanner =
    "cost-model planner vs per-loop heuristic: coherent SMP DAXPY, a "
    "NUMA false-sharing case where the heuristic's eager .excl backfires,"
    " and a phase-shifting schedule that exercises plan hysteresis";

Json RunPlanner(const SuiteOptions& options) {
  Json e = BeginExperiment("planner", "DESIGN.md §9", kDescPlanner,
                           "smp4+numa8", 0);

  // The planner trends pin MESI explicitly (like protocol_matrix's rows):
  // the benefit model's traffic shares are protocol-aware, and the trend
  // assertions must hold regardless of the ambient COBRA_PROTOCOL loop.
  struct Workload {
    const char* name;
    machine::MachineConfig machine;
    int threads;
    std::int64_t n;
    std::vector<int> segments;
    core::CobraConfig config;
  };
  std::vector<Workload> workloads;
  {
    // W1: the quickstart pathology — measured epochs on, the noprefetch
    // strategy wins, and the kept epoch feeds realized benefit back into
    // the cost run's estimate ledger.
    Workload w;
    w.name = "smp.coherent";
    w.machine = machine::SmpServerConfig(4);
    w.machine.mem.protocol = mem::Protocol::kMesi;
    w.machine.mem.memory_bytes = 1 << 24;
    w.threads = 4;
    w.n = 8192;  // 128 KB working set: cache-resident, coherence-bound
    w.segments.assign(options.quick ? 40 : 64, 0);
    w.config.strategy = core::OptKind::kNoprefetch;
    w.config.require_coherent_load_in_loop = false;
    workloads.push_back(std::move(w));
  }
  {
    // W2: NUMA false sharing under an eagerly deployed .excl heuristic
    // (measured epochs off — the non-adaptive strawman). Exclusive
    // prefetch RFO-steals boundary lines across the directory fabric; the
    // cost model prices that remote traffic and declines the .excl
    // candidate in favour of noprefetch.
    Workload w;
    w.name = "numa.false_sharing";
    w.machine = machine::AltixConfig(8);
    w.machine.mem.protocol = mem::Protocol::kMesi;
    w.machine.mem.memory_bytes = 1 << 24;
    w.threads = 8;
    w.n = 8192;  // 8 KB chunks/thread: prefetch streams straddle chunks
    w.segments.assign(options.quick ? 24 : 40, 0);
    w.config.strategy = core::OptKind::kPrefetchExcl;
    w.config.measured_epochs = false;
    w.config.require_coherent_load_in_loop = false;
    workloads.push_back(std::move(w));
  }
  {
    // W3: phase-shifting schedule over two kernels with budget for one
    // patch on either side (max_deployments for the heuristic, plan_budget
    // for the cost planner). Once the second phase's cumulative latency
    // mass overtakes the first's, the fresh solve flips — and the cooldown
    // must suppress the revision (rejected_hysteresis > 0) instead of
    // thrashing the standing plan.
    Workload w;
    w.name = "phase.shift";
    w.machine = machine::SmpServerConfig(4);
    w.machine.mem.protocol = mem::Protocol::kMesi;
    w.machine.mem.memory_bytes = 1 << 24;
    w.threads = 4;
    w.n = 8192;
    for (int cycle = 0; cycle < (options.quick ? 3 : 5); ++cycle) {
      w.segments.insert(w.segments.end(), 4, 0);
      w.segments.insert(w.segments.end(), 6, 1);
    }
    w.config.strategy = core::OptKind::kNoprefetch;
    w.config.measured_epochs = false;
    w.config.require_coherent_load_in_loop = false;
    w.config.max_deployments = 1;
    w.config.plan_budget = 2.0;  // one daxpy patch costs ~1.6 units
    w.config.plan_min_profit_delta = 0.0;
    w.config.plan_cooldown_cycles = ~std::uint64_t{0} >> 1;  // never elapses
    workloads.push_back(std::move(w));
  }

  Json rows = Json::Array();
  Json derived = Json::Object();
  std::uint64_t phase_rejected_hysteresis = 0;
  for (const Workload& w : workloads) {
    if (options.echo) {
      std::fprintf(stderr, "[cobra_bench]   planner %s\n", w.name);
    }
    PlannerRun runs[2];
    for (const core::PlannerKind kind :
         {core::PlannerKind::kHeuristic, core::PlannerKind::kCost}) {
      const int i = kind == core::PlannerKind::kCost ? 1 : 0;
      runs[i] = RunPlannerOnce(kind, w.machine, w.threads, w.n, w.segments,
                               w.config, options.engine);
      const PlannerRun& r = runs[i];
      Json row = Json::Object();
      row.Set("workload", w.name);
      row.Set("planner", core::PlannerKindName(kind));
      row.Set("cycles", static_cast<std::uint64_t>(r.cycles));
      row.Set("deployments", r.stats.deployments);
      row.Set("rollbacks", r.stats.rollbacks);
      row.Set("lfetches_rewritten", r.stats.lfetches_rewritten);
      row.Set("planner_candidates", r.planner.candidates_seen);
      row.Set("planner_accepted", r.planner.accepted);
      row.Set("planner_rejected_budget", r.planner.rejected_budget);
      row.Set("planner_rejected_hysteresis", r.planner.rejected_hysteresis);
      row.Set("planner_plan_revisions", r.planner.plan_revisions);
      row.Set("planner_estimated_benefit_cycles",
              static_cast<std::uint64_t>(r.planner.estimated_benefit));
      row.Set("planner_realized_benefit_cycles",
              static_cast<std::uint64_t>(r.planner.realized_benefit));
      rows.Append(std::move(row));
    }
    const std::string key =
        std::string("cost_over_heuristic_") +
        std::string(w.name).substr(0, std::string(w.name).find('.'));
    derived.Set(key, static_cast<double>(runs[1].cycles) /
                         static_cast<double>(runs[0].cycles));
    if (std::string(w.name) == "smp.coherent") {
      derived.Set("estimated_benefit_cycles",
                  static_cast<std::uint64_t>(runs[1].planner.estimated_benefit));
      derived.Set("realized_benefit_cycles",
                  static_cast<std::uint64_t>(runs[1].planner.realized_benefit));
    }
    if (std::string(w.name) == "phase.shift") {
      phase_rejected_hysteresis = runs[1].planner.rejected_hysteresis;
    }
  }
  derived.Set("phase_rejected_hysteresis", phase_rejected_hysteresis);
  e.Set("rows", std::move(rows));
  e.Set("derived", std::move(derived));
  return e;
}

// --- Sampled-vs-full accuracy (snapshots + BBV phases) ---------------------

constexpr const char* kDescSampledAccuracy =
    "sampled simulation accuracy on a beyond-class-S MG: full-detail vs "
    "checkpoint-warmed BBV-phase projections, per-mode cycle/traffic error "
    "and projected-speedup error";

Json RunSampledAccuracy(const SuiteOptions& options) {
  Json e = BeginExperiment("sampled_accuracy", "extension",
                           kDescSampledAccuracy, "smp4", 4);
  // Scaled MG (mg@N multiplies every grid level): the suite's biggest
  // COBRA effect (Fig. 5's largest speedup), so the directional check is
  // robust, and large enough that the detailed-instruction fraction of a
  // sampled run sits well under 1/3 — the wall-clock-reduction claim —
  // yet CI-sized in quick mode.
  const std::string benchmark = options.quick ? "mg@2" : "mg@4";
  perfmon::SampleConfig sample;
  sample.interval_insts = options.quick ? 200000 : 300000;
  sample.max_phases = 6;

  const auto machine = machine::SmpServerConfig(4);
  const NpbMode modes[] = {NpbMode::kBaseline, NpbMode::kCobraNoprefetch};

  // Accelerated epoch cadence, applied to the FULL and the SAMPLED run
  // alike (the comparison stays apples-to-apples): COBRA's measured-epoch
  // machine only advances while the HPM runs, and a sampled run simulates
  // a few hundred thousand detailed instructions in total. At the default
  // cadence the runtime would still be measuring its baseline when the
  // run ends — in both variants COBRA must converge early relative to the
  // instructions it can observe.
  const auto quick_epochs = [](core::CobraConfig& config) {
    config.batches_per_evaluation = 1;
    config.epoch_windows = 2;
    config.max_settle_windows = 3;
  };

  Json rows = Json::Array();
  double full_cycles[2] = {};
  double sampled_cycles[2] = {};
  double detailed_fraction_max = 0.0;
  double full_wall[2] = {};
  double sampled_wall[2] = {};
  for (int m = 0; m < 2; ++m) {
    if (options.echo) {
      std::fprintf(stderr, "[cobra_bench]   sampled_accuracy %s %s\n",
                   benchmark.c_str(), NpbModeName(modes[m]));
    }
    NpbOptions full_options;
    full_options.engine = options.engine;
    full_options.tweak_config = quick_epochs;
    auto t0 = std::chrono::steady_clock::now();
    const NpbRunResult full =
        RunNpbExperiment(benchmark, machine, 4, modes[m], full_options);
    full_wall[m] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    NpbOptions sampled_options;
    sampled_options.engine = options.engine;
    sampled_options.tweak_config = quick_epochs;
    sampled_options.sample = sample;
    t0 = std::chrono::steady_clock::now();
    const NpbRunResult sampled =
        RunNpbExperiment(benchmark, machine, 4, modes[m], sampled_options);
    sampled_wall[m] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    full_cycles[m] = static_cast<double>(full.cycles);
    sampled_cycles[m] = static_cast<double>(sampled.cycles);
    detailed_fraction_max =
        std::max(detailed_fraction_max, sampled.sample.detailed_fraction);

    auto Error = [](std::uint64_t projected, std::uint64_t measured) {
      return measured == 0 ? 0.0
                           : std::abs(static_cast<double>(projected) -
                                      static_cast<double>(measured)) /
                                 static_cast<double>(measured);
    };
    Json row = Json::Object();
    row.Set("benchmark", benchmark);
    row.Set("mode", NpbModeName(modes[m]));
    row.Set("full_cycles", static_cast<std::uint64_t>(full.cycles));
    row.Set("projected_cycles", static_cast<std::uint64_t>(sampled.cycles));
    row.Set("cycles_error", Error(sampled.cycles, full.cycles));
    row.Set("full_l3_misses", full.l3_misses);
    row.Set("projected_l3_misses", sampled.l3_misses);
    row.Set("l3_error", Error(sampled.l3_misses, full.l3_misses));
    row.Set("full_bus_memory", full.bus_memory);
    row.Set("projected_bus_memory", sampled.bus_memory);
    row.Set("bus_error", Error(sampled.bus_memory, full.bus_memory));
    row.Set("intervals", sampled.sample.intervals);
    row.Set("phases", sampled.sample.phases);
    row.Set("detailed_intervals", sampled.sample.detailed_intervals);
    row.Set("checkpoints", sampled.sample.checkpoints);
    row.Set("checkpoint_bytes", sampled.sample.checkpoint_bytes);
    row.Set("detailed_fraction", sampled.sample.detailed_fraction);
    row.Set("verified", full.verified && sampled.verified);
    // Host wall-clock of the two runs: nondeterministic, so under a "host"
    // key (cobra_bench --compare skips those at any depth).
    Json host = Json::Object();
    host.Set("full_wall_seconds", full_wall[m]);
    host.Set("sampled_wall_seconds", sampled_wall[m]);
    host.Set("wall_speedup",
             sampled_wall[m] > 0.0 ? full_wall[m] / sampled_wall[m] : 0.0);
    row.Set("host", std::move(host));
    rows.Append(std::move(row));
  }
  e.Set("rows", std::move(rows));

  // The figure future trends tests pin: does the sampled run project the
  // same COBRA speedup the full run measures?
  const double speedup_full = full_cycles[1] > 0.0
                                  ? full_cycles[0] / full_cycles[1]
                                  : 0.0;
  const double speedup_sampled = sampled_cycles[1] > 0.0
                                     ? sampled_cycles[0] / sampled_cycles[1]
                                     : 0.0;
  Json derived = Json::Object();
  derived.Set("speedup_full", speedup_full);
  derived.Set("speedup_sampled", speedup_sampled);
  derived.Set("speedup_error",
              speedup_full > 0.0
                  ? std::abs(speedup_sampled - speedup_full) / speedup_full
                  : 0.0);
  derived.Set("directional_ok",
              (speedup_full >= 1.0) == (speedup_sampled >= 1.0));
  derived.Set("detailed_fraction_max", detailed_fraction_max);
  // Deterministic wall-clock proxy: detailed simulation dominates host
  // cost, so 1/fraction bounds the reduction sampling buys. >= 3 backs the
  // ">= 3x wall-clock reduction" claim without comparing wall seconds.
  derived.Set("wall_reduction_proxy",
              detailed_fraction_max > 0.0 ? 1.0 / detailed_fraction_max : 0.0);
  Json host = Json::Object();
  host.Set("wall_speedup_baseline",
           sampled_wall[0] > 0.0 ? full_wall[0] / sampled_wall[0] : 0.0);
  host.Set("wall_speedup_cobra",
           sampled_wall[1] > 0.0 ? full_wall[1] / sampled_wall[1] : 0.0);
  derived.Set("host", std::move(host));
  e.Set("derived", std::move(derived));
  return e;
}

// --- Micro suite: execution-engine behaviour -------------------------------

DaxpyParams MicroDaxpyParams(const SuiteOptions& options) {
  DaxpyParams params;
  params.threads = 4;
  params.working_set_bytes = 128 * 1024;
  params.variant = DaxpyVariant::kPrefetch;
  params.reps = options.quick ? 8 : 20;
  params.warmup_reps = 2;
  return params;
}

constexpr const char* kDescEngineEquivalence =
    "registry fingerprint of the same DAXPY run under the serial and "
    "parallel engines (must be bit-identical)";

Json RunEngineEquivalence(const SuiteOptions& options) {
  Json e = BeginExperiment("engine_equivalence", "DESIGN.md §7",
                           kDescEngineEquivalence, "smp4", 4);
  struct Spec {
    const char* name;
    machine::EngineKind kind;
    int host_threads;
  };
  const Spec specs[] = {{"serial", machine::EngineKind::kSerial, 0},
                        {"parallel:2", machine::EngineKind::kParallel, 2},
                        {"parallel:4", machine::EngineKind::kParallel, 4}};
  Json rows = Json::Array();
  std::uint64_t first_fp = 0;
  bool identical = true;
  for (const Spec& spec : specs) {
    DaxpyParams params = MicroDaxpyParams(options);
    params.engine.kind = spec.kind;
    params.engine.host_threads = spec.host_threads;
    params.engine.quantum = options.engine.quantum;
    const DaxpyResult r = RunDaxpyExperiment(params);
    const std::uint64_t fp = r.snapshot.Fingerprint();
    if (rows.size() == 0) first_fp = fp;
    identical = identical && fp == first_fp;
    Json row = Json::Object();
    row.Set("engine", spec.name);
    row.Set("cycles", static_cast<std::uint64_t>(r.cycles));
    row.Set("registry_fingerprint", FingerprintHex(fp));
    row.Set("verified", r.verified);
    rows.Append(std::move(row));
  }
  e.Set("rows", std::move(rows));
  Json derived = Json::Object();
  derived.Set("identical", identical);
  e.Set("derived", std::move(derived));
  return e;
}

constexpr const char* kDescQuantumSweep =
    "the quantum is a semantic timing-model parameter: different Q give "
    "different (equally deterministic) cycle counts";

Json RunQuantumSweep(const SuiteOptions& options) {
  Json e = BeginExperiment("quantum_sweep", "DESIGN.md §7", kDescQuantumSweep,
                           "smp4", 4);
  Json rows = Json::Array();
  for (const Cycle quantum : {Cycle{256}, Cycle{1024}, Cycle{4096}}) {
    DaxpyParams params = MicroDaxpyParams(options);
    params.engine = options.engine;
    params.engine.quantum = quantum;
    const DaxpyResult r = RunDaxpyExperiment(params);
    Json row = Json::Object();
    row.Set("quantum", static_cast<std::uint64_t>(quantum));
    row.Set("cycles", static_cast<std::uint64_t>(r.cycles));
    row.Set("registry_fingerprint",
            FingerprintHex(r.snapshot.Fingerprint()));
    rows.Append(std::move(row));
  }
  e.Set("rows", std::move(rows));
  Json derived = Json::Object();
  derived.Set("quanta", 3);
  e.Set("derived", std::move(derived));
  return e;
}

// --- Suite assembly --------------------------------------------------------

struct ExperimentDef {
  const char* name;
  Json (*fn)(const SuiteOptions&);
  const char* description;  // the same string the experiment's JSON carries
};

constexpr ExperimentDef kPaperExperiments[] = {
    {"table1_static_stats", RunTable1, kDescTable1},
    {"fig2_codegen", RunFig2, kDescFig2},
    {"fig3_daxpy", RunFig3, kDescFig3},
    {"npb_smp", RunNpbSmp, kDescNpbSmp},
    {"npb_numa", RunNpbNuma, kDescNpbNuma},
    {"protocol_matrix", RunProtocolMatrix, kDescProtocolMatrix},
    {"ablations", RunAblations, kDescAblations},
    {"adore_insertion", RunInsertion, kDescInsertion},
    {"static_priors", RunStaticPriors, kDescStaticPriors},
    {"planner", RunPlanner, kDescPlanner},
    {"sampled_accuracy", RunSampledAccuracy, kDescSampledAccuracy},
};

constexpr ExperimentDef kMicroExperiments[] = {
    {"engine_equivalence", RunEngineEquivalence, kDescEngineEquivalence},
    {"quantum_sweep", RunQuantumSweep, kDescQuantumSweep},
};

template <std::size_t N>
Json RunSuite(const char* suite_name, const ExperimentDef (&defs)[N],
              const SuiteOptions& options) {
  Json doc = Json::Object();
  doc.Set("schema_version", 1);
  doc.Set("generator", "cobra_bench");
  doc.Set("suite", suite_name);
  doc.Set("quick", options.quick);
  doc.Set("engine", EngineSpecString(options.engine));
  // The ambient coherence protocol (COBRA_PROTOCOL): every preset-built
  // machine in the suite runs under it. protocol_matrix additionally pins
  // each protocol explicitly, regardless of this value.
  doc.Set("protocol",
          mem::ProtocolName(mem::ProtocolFromEnv(mem::Protocol::kMesi)));
  Json experiments = Json::Array();
  for (const ExperimentDef& def : defs) {
    if (!options.only.empty() &&
        std::string_view(def.name).find(options.only) ==
            std::string_view::npos) {
      continue;
    }
    if (options.echo) {
      std::fprintf(stderr, "[cobra_bench] %s\n", def.name);
    }
    const machine::HostPerf before = machine::GlobalHostPerfTotals();
    const auto t0 = std::chrono::steady_clock::now();
    Json e = def.fn(options);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    e.Set("host",
          HostPerfJson(before, machine::GlobalHostPerfTotals(), wall_seconds));
    experiments.Append(std::move(e));
    // Each experiment gets its own COBRA_TRACE timeline segment; flushing
    // between them bounds memory and makes partial traces useful.
    obs::FlushEnvTrace();
  }
  doc.Set("experiments", std::move(experiments));
  return doc;
}

template <std::size_t N>
std::vector<std::string> Names(const ExperimentDef (&defs)[N]) {
  std::vector<std::string> names;
  for (const ExperimentDef& def : defs) names.emplace_back(def.name);
  return names;
}

template <std::size_t N>
std::vector<ExperimentInfo> Infos(const ExperimentDef (&defs)[N]) {
  std::vector<ExperimentInfo> infos;
  for (const ExperimentDef& def : defs) {
    infos.push_back({def.name, def.description});
  }
  return infos;
}

}  // namespace

std::string EngineSpecString(const machine::EngineConfig& config) {
  std::string spec =
      config.kind == machine::EngineKind::kSerial ? "serial" : "parallel";
  if (config.kind == machine::EngineKind::kParallel &&
      config.host_threads > 0) {
    spec += ":" + std::to_string(config.host_threads);
  }
  if (config.quantum != machine::EngineConfig{}.quantum) {
    spec += "@" + std::to_string(config.quantum);
  }
  return spec;
}

std::vector<std::string> PaperExperimentNames() {
  return Names(kPaperExperiments);
}
std::vector<std::string> MicroExperimentNames() {
  return Names(kMicroExperiments);
}
std::vector<ExperimentInfo> PaperExperimentList() {
  return Infos(kPaperExperiments);
}
std::vector<ExperimentInfo> MicroExperimentList() {
  return Infos(kMicroExperiments);
}

Json RunPaperSuite(const SuiteOptions& options) {
  return RunSuite("paper", kPaperExperiments, options);
}
Json RunMicroSuite(const SuiteOptions& options) {
  return RunSuite("micro", kMicroExperiments, options);
}

}  // namespace cobra::bench
