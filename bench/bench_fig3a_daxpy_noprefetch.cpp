// Figure 3(a): normalized execution time of the OpenMP DAXPY kernel,
// prefetch vs noprefetch, {1,2,4} threads x {128K, 512K, 2M} working sets,
// on the 4-way Itanium 2 SMP server. Normalization: 1-thread prefetch = 1
// per working-set size (as in the paper).
#include <cstdio>
#include <map>

#include "daxpy_experiment.h"
#include "support/table.h"

int main() {
  using namespace cobra;
  using bench::DaxpyParams;
  using bench::DaxpyVariant;

  std::printf(
      "Figure 3(a): DAXPY scalability, with/without prefetch "
      "(4-way Itanium 2 SMP)\n"
      "Paper reference points: 128K: noprefetch ~35%% faster at 2 threads, "
      "~52%% faster at 4 threads;\n"
      "                        2M:   prefetch version wins.\n\n");

  const std::size_t kWorkingSets[] = {128 * 1024, 512 * 1024, 2 * 1024 * 1024};
  const int kThreads[] = {1, 2, 4};
  const DaxpyVariant kVariants[] = {DaxpyVariant::kPrefetch,
                                    DaxpyVariant::kNoprefetch};

  support::TextTable table({"working set", "(threads, variant)",
                            "cycles", "normalized", "verified"});
  for (const std::size_t ws : kWorkingSets) {
    double baseline = 0.0;
    for (const int threads : kThreads) {
      for (const DaxpyVariant variant : kVariants) {
        DaxpyParams params;
        params.threads = threads;
        params.working_set_bytes = ws;
        params.variant = variant;
        const auto result = RunDaxpyExperiment(params);
        if (baseline == 0.0) baseline = static_cast<double>(result.cycles);
        char label[64];
        std::snprintf(label, sizeof label, "(%d, %s)", threads,
                      bench::DaxpyVariantName(variant));
        table.AddRow({std::to_string(ws / 1024) + "K", label,
                      support::TextTable::Int(
                          static_cast<long long>(result.cycles)),
                      support::TextTable::Num(
                          static_cast<double>(result.cycles) / baseline),
                      result.verified ? "yes" : "NO"});
      }
    }
  }
  table.Print();
  return 0;
}
