#include "npb_experiment.h"

#include "npb/common.h"
#include "support/check.h"

namespace cobra::bench {

const char* NpbModeName(NpbMode mode) {
  switch (mode) {
    case NpbMode::kBaseline: return "prefetch";
    case NpbMode::kCobraNoprefetch: return "noprefetch";
    case NpbMode::kCobraExcl: return "prefetch.excl";
  }
  return "?";
}

NpbRunResult RunNpbExperiment(const std::string& benchmark,
                              const machine::MachineConfig& machine_config,
                              int threads, NpbMode mode,
                              const NpbOptions& options) {
  auto bench = npb::MakeBenchmark(benchmark);
  kgen::Program prog;
  // All modes run the same aggressively-prefetching binary; COBRA adapts it
  // at runtime (that is the point of the paper). The blind-noprefetch and
  // always-excl ablations compile the strawman binaries instead.
  COBRA_CHECK(!(options.static_noprefetch_binary && options.static_excl_binary));
  kgen::PrefetchPolicy policy;
  if (options.static_noprefetch_binary) policy = kgen::PrefetchPolicy::None();
  if (options.static_excl_binary) policy = kgen::PrefetchPolicy::Excl();
  bench->Build(prog, policy);

  machine::MachineConfig cfg = machine_config;
  cfg.mem.memory_bytes = 1 << 25;
  machine::Machine machine(cfg, &prog.image());
  bench->Init(machine, threads);

  std::unique_ptr<core::CobraRuntime> cobra;
  if (mode != NpbMode::kBaseline) {
    core::CobraConfig config;
    // Finer sampling than the defaults: class-S loop bodies are tiny, and
    // at 8 threads a parallel region can retire fewer instructions per
    // thread than the default period, starving the loop-cost attribution.
    config.sampling_period_insts = 1000;
    config.strategy = mode == NpbMode::kCobraNoprefetch
                          ? core::OptKind::kNoprefetch
                          : core::OptKind::kPrefetchExcl;
    if (options.tweak_config) options.tweak_config(config);
    cobra = std::make_unique<core::CobraRuntime>(&machine, config);
    cobra->AttachAll(threads);
  }

  rt::Team team(&machine, threads, options.engine);
  NpbRunResult result;
  result.cycles = bench->Run(team);
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    const auto& stats = machine.stack(cpu).stats();
    result.l3_misses += machine.stack(cpu).L3Misses();
    result.snoop_invalidations += stats.snoop_invalidations;
    result.prefetch_bus_requests += stats.prefetch_bus_requests;
  }
  const auto& bus = machine.fabric().TotalCounts();
  result.bus_memory = bus.bus_memory;
  result.coherent_events = bus.CoherentEvents();
  result.bus_upgrades = bus.bus_upgrades;
  result.bus_rd_inval_all_hitm = bus.bus_rd_inval_all_hitm;
  result.bus_updates = bus.bus_updates;
  result.c2c_transfers = bus.c2c_transfers;
  result.bus_writebacks = bus.bus_writebacks;
  result.remote_transactions = bus.remote_transactions;
  result.verified = bench->Verify(machine);
  if (cobra) result.cobra = cobra->stats();
  result.snapshot = machine.registry().Take();
  return result;
}

}  // namespace cobra::bench
