#include "npb_experiment.h"

#include <cstdio>
#include <vector>

#include "npb/common.h"
#include "support/check.h"
#include "support/table.h"

namespace cobra::bench {

const char* NpbModeName(NpbMode mode) {
  switch (mode) {
    case NpbMode::kBaseline: return "prefetch";
    case NpbMode::kCobraNoprefetch: return "noprefetch";
    case NpbMode::kCobraExcl: return "prefetch.excl";
  }
  return "?";
}

NpbRunResult RunNpbExperiment(const std::string& benchmark,
                              const machine::MachineConfig& machine_config,
                              int threads, NpbMode mode,
                              const NpbOptions& options) {
  auto bench = npb::MakeBenchmark(benchmark);
  kgen::Program prog;
  // All modes run the same aggressively-prefetching binary; COBRA adapts it
  // at runtime (that is the point of the paper). The blind-noprefetch
  // ablation compiles the prefetches away instead.
  bench->Build(prog, options.static_noprefetch_binary
                         ? kgen::PrefetchPolicy::None()
                         : kgen::PrefetchPolicy{});

  machine::MachineConfig cfg = machine_config;
  cfg.mem.memory_bytes = 1 << 25;
  machine::Machine machine(cfg, &prog.image());
  bench->Init(machine, threads);

  std::unique_ptr<core::CobraRuntime> cobra;
  if (mode != NpbMode::kBaseline) {
    core::CobraConfig config;
    // Finer sampling than the defaults: class-S loop bodies are tiny, and
    // at 8 threads a parallel region can retire fewer instructions per
    // thread than the default period, starving the loop-cost attribution.
    config.sampling_period_insts = 1000;
    config.strategy = mode == NpbMode::kCobraNoprefetch
                          ? core::OptKind::kNoprefetch
                          : core::OptKind::kPrefetchExcl;
    if (options.tweak_config) options.tweak_config(config);
    cobra = std::make_unique<core::CobraRuntime>(&machine, config);
    cobra->AttachAll(threads);
  }

  rt::Team team(&machine, threads, options.engine);
  NpbRunResult result;
  result.cycles = bench->Run(team);
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    result.l3_misses += machine.stack(cpu).L3Misses();
  }
  const auto& bus = machine.fabric().TotalCounts();
  result.bus_memory = bus.bus_memory;
  result.coherent_events = bus.CoherentEvents();
  result.verified = bench->Verify(machine);
  if (cobra) result.cobra = cobra->stats();
  return result;
}

void PrintNpbFigure(const char* title, const char* paper_reference,
                    const machine::MachineConfig& machine_config, int threads,
                    int metric) {
  std::printf("%s\n%s\n\n", title, paper_reference);

  const char* metric_name = metric == 0   ? "speedup"
                            : metric == 1 ? "normalized L3 misses"
                                          : "normalized bus transactions";
  support::TextTable table({"benchmark", "mode", metric_name, "raw",
                            "deployments", "verified"});

  double sum_noprefetch = 0.0, sum_excl = 0.0;
  int count = 0;
  for (const std::string& name : npb::ResultBenchmarkNames()) {
    const NpbRunResult base =
        RunNpbExperiment(name, machine_config, threads, NpbMode::kBaseline);
    COBRA_CHECK_MSG(base.verified, "baseline verification failed");

    for (const NpbMode mode :
         {NpbMode::kCobraNoprefetch, NpbMode::kCobraExcl}) {
      const NpbRunResult opt =
          RunNpbExperiment(name, machine_config, threads, mode);
      auto Pick = [&](const NpbRunResult& r) -> double {
        switch (metric) {
          case 0: return static_cast<double>(r.cycles);
          case 1: return static_cast<double>(r.l3_misses);
          default: return static_cast<double>(r.bus_memory);
        }
      };
      // Speedup = base/opt; miss/transaction counts normalize opt/base.
      const double value = metric == 0 ? Pick(base) / Pick(opt)
                                       : Pick(opt) / Pick(base);
      if (mode == NpbMode::kCobraNoprefetch) {
        sum_noprefetch += value;
      } else {
        sum_excl += value;
      }
      table.AddRow({name + ".S", NpbModeName(mode),
                    support::TextTable::Num(value, 3),
                    support::TextTable::Int(static_cast<long long>(
                        metric == 0   ? opt.cycles
                        : metric == 1 ? opt.l3_misses
                                      : opt.bus_memory)),
                    support::TextTable::Int(
                        static_cast<long long>(opt.cobra.deployments)),
                    opt.verified ? "yes" : "NO"});
    }
    ++count;
  }
  table.AddRow({"avg", "noprefetch",
                support::TextTable::Num(sum_noprefetch / count, 3), "", "",
                ""});
  table.AddRow({"avg", "prefetch.excl",
                support::TextTable::Num(sum_excl / count, 3), "", "", ""});
  table.Print();
}

}  // namespace cobra::bench
