#include "npb_experiment.h"

#include <memory>

#include "npb/common.h"
#include "support/check.h"

namespace cobra::bench {
namespace {

// One fully wired benchmark instance: program, machine, optional COBRA
// runtime, team. Built once per pass (the profiling pass and the sampled
// pass must not share simulated state).
struct NpbInstance {
  kgen::Program prog;
  std::unique_ptr<npb::NpbBenchmark> bench;
  std::unique_ptr<machine::Machine> machine;
  std::unique_ptr<core::CobraRuntime> cobra;
  std::unique_ptr<rt::Team> team;
};

std::unique_ptr<NpbInstance> BuildInstance(
    const std::string& benchmark, const machine::MachineConfig& machine_config,
    int threads, NpbMode mode, const NpbOptions& options, bool attach_cobra) {
  auto inst = std::make_unique<NpbInstance>();
  inst->bench = npb::MakeBenchmark(benchmark);
  // All modes run the same aggressively-prefetching binary; COBRA adapts it
  // at runtime (that is the point of the paper). The blind-noprefetch and
  // always-excl ablations compile the strawman binaries instead.
  COBRA_CHECK(!(options.static_noprefetch_binary && options.static_excl_binary));
  kgen::PrefetchPolicy policy;
  if (options.static_noprefetch_binary) policy = kgen::PrefetchPolicy::None();
  if (options.static_excl_binary) policy = kgen::PrefetchPolicy::Excl();
  inst->bench->Build(inst->prog, policy);

  machine::MachineConfig cfg = machine_config;
  cfg.mem.memory_bytes = 1 << 25;
  inst->machine = std::make_unique<machine::Machine>(cfg, &inst->prog.image());
  inst->bench->Init(*inst->machine, threads);

  if (mode != NpbMode::kBaseline && attach_cobra) {
    core::CobraConfig config;
    // Finer sampling than the defaults: class-S loop bodies are tiny, and
    // at 8 threads a parallel region can retire fewer instructions per
    // thread than the default period, starving the loop-cost attribution.
    config.sampling_period_insts = 1000;
    config.strategy = mode == NpbMode::kCobraNoprefetch
                          ? core::OptKind::kNoprefetch
                          : core::OptKind::kPrefetchExcl;
    if (options.tweak_config) options.tweak_config(config);
    inst->cobra = std::make_unique<core::CobraRuntime>(inst->machine.get(),
                                                       config);
    inst->cobra->AttachAll(threads);
  }

  inst->team =
      std::make_unique<rt::Team>(inst->machine.get(), threads, options.engine);
  return inst;
}

// The cumulative traffic counters RunNpbExperiment reports, as one probe
// vector (sampled runs extrapolate these per phase; full runs read them
// once at the end). Order matches FillCounters below.
std::vector<std::uint64_t> ReadCounters(machine::Machine& machine) {
  std::vector<std::uint64_t> c(11, 0);
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    const auto& stats = machine.stack(cpu).stats();
    c[0] += machine.stack(cpu).L3Misses();
    c[1] += stats.snoop_invalidations;
    c[2] += stats.prefetch_bus_requests;
  }
  const auto& bus = machine.fabric().TotalCounts();
  c[3] = bus.bus_memory;
  c[4] = bus.CoherentEvents();
  c[5] = bus.bus_upgrades;
  c[6] = bus.bus_rd_inval_all_hitm;
  c[7] = bus.bus_updates;
  c[8] = bus.c2c_transfers;
  c[9] = bus.bus_writebacks;
  c[10] = bus.remote_transactions;
  return c;
}

void FillCounters(const std::vector<std::uint64_t>& c, NpbRunResult* result) {
  result->l3_misses = c[0];
  result->snoop_invalidations = c[1];
  result->prefetch_bus_requests = c[2];
  result->bus_memory = c[3];
  result->coherent_events = c[4];
  result->bus_upgrades = c[5];
  result->bus_rd_inval_all_hitm = c[6];
  result->bus_updates = c[7];
  result->c2c_transfers = c[8];
  result->bus_writebacks = c[9];
  result->remote_transactions = c[10];
}

}  // namespace

const char* NpbModeName(NpbMode mode) {
  switch (mode) {
    case NpbMode::kBaseline: return "prefetch";
    case NpbMode::kCobraNoprefetch: return "noprefetch";
    case NpbMode::kCobraExcl: return "prefetch.excl";
  }
  return "?";
}

NpbRunResult RunNpbExperiment(const std::string& benchmark,
                              const machine::MachineConfig& machine_config,
                              int threads, NpbMode mode,
                              const NpbOptions& options) {
  NpbRunResult result;

  perfmon::PhaseProfile profile;
  if (options.sample.enabled()) {
    // Pass 1: fast-forward BBV profiling. COBRA is left detached — the
    // functional pass has no DEAR latencies for it to act on, and the
    // profile only needs the block-level execution shape.
    auto scout = BuildInstance(benchmark, machine_config, threads, mode,
                               options, /*attach_cobra=*/false);
    perfmon::PhaseProfiler profiler(scout->machine.get(), options.sample);
    scout->bench->Run(*scout->team);
    profile = profiler.Finish();
  }

  auto inst = BuildInstance(benchmark, machine_config, threads, mode, options,
                            /*attach_cobra=*/true);
  machine::Machine& machine = *inst->machine;

  if (options.sample.enabled()) {
    perfmon::SampledRun sampler(
        &machine, std::move(profile),
        [&machine] { return ReadCounters(machine); });
    inst->bench->Run(*inst->team);
    result.sampled = true;
    result.sample = sampler.Finish();
    result.cycles = result.sample.projected_cycles;
    FillCounters(result.sample.projected, &result);
    result.verified = inst->bench->Verify(machine);
    if (inst->cobra) result.cobra = inst->cobra->stats();
    // Taken while the sampler is alive so the sample.* family is included.
    result.snapshot = machine.registry().Take();
    return result;
  }

  result.cycles = inst->bench->Run(*inst->team);
  FillCounters(ReadCounters(machine), &result);
  result.verified = inst->bench->Verify(machine);
  if (inst->cobra) result.cobra = inst->cobra->stats();
  result.snapshot = machine.registry().Take();
  return result;
}

}  // namespace cobra::bench
