// Figure 7(b): normalized system-bus memory transactions under COBRA's
// optimizations, 8 threads on the SGI Altix cc-NUMA system.
#include "machine/machine.h"
#include "npb_experiment.h"

int main() {
  using namespace cobra;
  bench::PrintNpbFigure(
      "Figure 7(b): normalized bus memory transactions, 8 threads, cc-NUMA",
      "Paper: noprefetch -13.9% on average; prefetch.excl -1.9% on "
      "average. Baseline = 1.0; lower is better (correlates with Fig. 6b).",
      machine::AltixConfig(8), /*threads=*/8, /*metric=*/2);
  return 0;
}
