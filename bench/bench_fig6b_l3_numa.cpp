// Figure 6(b): normalized L3 miss counts under COBRA's optimizations,
// 8 threads on the SGI Altix cc-NUMA system.
#include "machine/machine.h"
#include "npb_experiment.h"

int main() {
  using namespace cobra;
  bench::PrintNpbFigure(
      "Figure 6(b): normalized L3 misses under COBRA, 8 threads, cc-NUMA",
      "Paper: noprefetch -13% on average (~-20% for BT, SP, CG); "
      "prefetch.excl -0.3% on average. Baseline = 1.0; lower is better.",
      machine::AltixConfig(8), /*threads=*/8, /*metric=*/1);
  return 0;
}
