// Shared harness for the Figure 3 motivation study: the OpenMP DAXPY
// kernel (Figure 1) compiled three ways — aggressive prefetch (icc
// baseline), prefetch removed, prefetch with .excl hints — swept over
// working-set sizes and thread counts on the simulated 4-way Itanium 2
// SMP server.
#pragma once

#include <cstdint>

#include "machine/engine.h"
#include "machine/machine.h"
#include "obs/registry.h"
#include "support/simtypes.h"

namespace cobra::bench {

enum class DaxpyVariant { kPrefetch, kNoprefetch, kExcl };

const char* DaxpyVariantName(DaxpyVariant variant);

struct DaxpyResult {
  Cycle cycles = 0;                 // timed region (after warm-up)
  std::uint64_t l3_misses = 0;      // all stacks, demand + prefetch
  std::uint64_t bus_memory = 0;     // system bus data transactions
  std::uint64_t coherent_events = 0;
  bool verified = false;            // y == y0 + reps * a * x
  // End-of-run observability-registry snapshot (engine-determinism tests
  // compare its fingerprint across execution engines).
  obs::Snapshot snapshot;
};

struct DaxpyParams {
  int threads = 4;
  std::size_t working_set_bytes = 128 * 1024;  // both arrays together
  DaxpyVariant variant = DaxpyVariant::kPrefetch;
  int reps = 40;         // outer j-loop trips (paper: 1,000,000)
  int warmup_reps = 4;   // excluded from the timed region
  machine::MachineConfig machine = machine::SmpServerConfig(4);
  // Host execution engine (results are bit-identical across engines);
  // honours COBRA_ENGINE, e.g. "parallel:4" or "serial@512".
  machine::EngineConfig engine = machine::EngineConfigFromEnv();
};

DaxpyResult RunDaxpyExperiment(const DaxpyParams& params);

}  // namespace cobra::bench
